//! The planar-embedding protocol (Theorem 1.4, §7 of the paper) and the
//! reduction `h(G, T, ρ)` to path-outerplanarity.
//!
//! Every node holds a clockwise rotation `ρ_v` of its incident edges; the
//! task is to decide whether `ρ` induces a genus-0 embedding. The prover
//! commits a rooted spanning tree `T` (Lemma 2.3 + Lemma 2.5); the Euler
//! tour of `T` in rotation order defines a path `P(G,T,ρ)` over node
//! *copies* `x_0(v), ..., x_χ(v)`, and every non-tree edge maps to an arc
//! between the copies determined by the first counterclockwise tree edges
//! at its endpoints. Lemma 7.3: `ρ` is a planar embedding iff
//! `h(G,T,ρ)` is path-outerplanar w.r.t. `P` — so the Theorem 1.2 protocol
//! runs on `h`, with each original node simulating its ≤ 5 visible copies
//! (`x_i(v)` is handled by child `c_i(v)`).

use crate::lr_sorting::Transport;
use crate::path_outerplanar::{PathOuterplanarity, PopCheat, PopInstance, PopParams};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{trace_stats, DipProtocol, Rejections, RunResult, SizeStats};
use pdip_graph::{EdgeId, EulerTour, Graph, NodeId, RootedForest, RotationSystem};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A planar-embedding instance: graph plus per-node rotations.
#[derive(Debug, Clone)]
pub struct EmbInstance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// The given clockwise rotations ρ(G).
    pub rho: RotationSystem,
    /// Ground truth: does ρ induce a planar embedding?
    pub is_yes: bool,
}

/// The reduction output: the graph `h(G, T, ρ)` with bookkeeping.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced graph: nodes are Euler-tour visits, `P` plus the arcs `Q`.
    pub h: Graph,
    /// The Hamiltonian path of `h` (tour order: node `i` is the i-th visit).
    pub path: Vec<NodeId>,
    /// Which original node each copy belongs to.
    pub copy_of: Vec<NodeId>,
    /// For each non-tree edge of `G`, the corresponding arc in `h`.
    pub arc_of_edge: Vec<Option<EdgeId>>,
}

/// Builds `h(G, T, ρ)`: the cut-along-the-tree disk boundary.
///
/// The announcement sketches `h` with `χ(v) + 1` copies per node (one per
/// Euler-tour visit). That granularity determines only which *corner* each
/// non-tree edge-end lies in — but the rotation also fixes the order of
/// edge-ends *within* a corner, and swapping two same-corner ends can
/// change the genus without changing corners. This implementation
/// therefore uses the exact dart-level construction underlying FFM+21's
/// proof: the path `P` walks the boundary of the fattened tree, emitting
/// one anchor node per Euler-tour visit and one node per non-tree
/// edge-end, in clockwise order within each corner; every non-tree edge
/// becomes an arc between its two end nodes. Then ρ is a planar embedding
/// iff the arcs are properly nested (Lemma 7.3). Edge-end labels ride on
/// the edges (Lemma 2.4), so the per-node label burden stays O(ℓ). See
/// DESIGN.md §3.
///
/// # Panics
/// Panics if `tree` is not a spanning tree of `g` rooted at `root`.
pub fn build_reduction(
    g: &Graph,
    rho: &RotationSystem,
    tree: &RootedForest,
    root: NodeId,
) -> Reduction {
    assert!(tree.is_spanning_tree(g), "reduction needs a spanning tree");
    // Children order c_1(v), ..., c_χ(v): clockwise from the parent edge
    // (for the root: by increasing ρ_r position).
    let is_tree_edge = |e: EdgeId| {
        let edge = g.edge(e);
        tree.parent_edge(edge.u) == Some(e) || tree.parent_edge(edge.v) == Some(e)
    };
    let child_order = |v: NodeId| -> Vec<NodeId> {
        let order = rho.order_at(v);
        let is_tree_child = |e: EdgeId| {
            let u = g.edge(e).other(v);
            tree.parent(u) == Some(v) && tree.parent_edge(u) == Some(e)
        };
        match tree.parent_edge(v) {
            Some(pe) => {
                let pos = rho.position(v, pe);
                let d = order.len();
                (1..d)
                    .map(|k| order[(pos + k) % d])
                    .filter(|&e| is_tree_child(e))
                    .map(|e| g.edge(e).other(v))
                    .collect()
            }
            None => order
                .iter()
                .copied()
                .filter(|&e| is_tree_child(e))
                .map(|e| g.edge(e).other(v))
                .collect(),
        }
    };
    let tour = EulerTour::new(tree, root, child_order);
    // The non-tree edge-ends in corner i of node v, in clockwise order
    // starting just after the corner's opening tree edge. Corner 0 opens
    // with the parent edge (the root's corner 0 is empty — its last sector
    // belongs to corner χ per the first-counterclockwise-tree-edge rule).
    let corner_ends = |v: NodeId, i: usize| -> Vec<EdgeId> {
        let order = rho.order_at(v);
        let d = order.len();
        let kids = child_order(v);
        let opening: Option<EdgeId> =
            if i == 0 { tree.parent_edge(v) } else { g.edge_between(v, kids[i - 1]) };
        let Some(open) = opening else {
            return Vec::new(); // the root's corner 0
        };
        let pos = rho.position(v, open);
        let mut out = Vec::new();
        for k in 1..d {
            let e = order[(pos + k) % d];
            if is_tree_edge(e) {
                break;
            }
            out.push(e);
        }
        out
    };
    // Emit the boundary walk.
    let mut h = Graph::new(0);
    let mut copy_of: Vec<NodeId> = Vec::new();
    let mut end_node: std::collections::HashMap<(EdgeId, NodeId), NodeId> = Default::default();
    let mut visit_count = vec![0usize; g.n()];
    for &v in &tour.tour {
        let i = visit_count[v];
        visit_count[v] += 1;
        // Anchor for the visit itself.
        let anchor = h.add_node();
        copy_of.push(v);
        let _ = anchor;
        for e in corner_ends(v, i) {
            let node = h.add_node();
            copy_of.push(v);
            end_node.insert((e, v), node);
        }
    }
    let hn = h.n();
    let path: Vec<NodeId> = (0..hn).collect();
    for i in 0..hn - 1 {
        h.add_edge(i, i + 1);
    }
    let mut arc_of_edge = vec![None; g.m()];
    for e in 0..g.m() {
        if is_tree_edge(e) {
            continue;
        }
        let edge = g.edge(e);
        let xu = end_node[&(e, edge.u)];
        let xv = end_node[&(e, edge.v)];
        debug_assert_ne!(xu, xv);
        if xu.abs_diff(xv) > 1 {
            arc_of_edge[e] = Some(h.add_edge(xu, xv));
        }
        // Adjacent end nodes: the arc is parallel to the path and can
        // never cross; leave it implicit.
    }
    Reduction { h, path, copy_of, arc_of_edge }
}

/// Cheat strategies for invalid embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbCheat {
    /// Honest reduction + honest sweep labels on the crossing `h`.
    HonestSweep,
    /// Honest reduction + force-marked violating arc.
    ForceMark,
    /// Commit a fake (non-spanning) tree.
    FakeTree,
}

/// All cheats in interface order.
pub const EMB_CHEATS: [EmbCheat; 3] =
    [EmbCheat::HonestSweep, EmbCheat::ForceMark, EmbCheat::FakeTree];

/// The planar-embedding DIP bound to an instance.
#[derive(Debug)]
pub struct EmbeddedPlanarity<'a> {
    inst: &'a EmbInstance,
    params: PopParams,
    transport: Transport,
}

impl<'a> EmbeddedPlanarity<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a EmbInstance, params: PopParams, transport: Transport) -> Self {
        EmbeddedPlanarity { inst, params, transport }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// One full run.
    pub fn run(&self, cheat: Option<EmbCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`EmbeddedPlanarity::run`] with an instrumentation [`Recorder`]:
    /// stage spans, Lemma 2.5 primitive spans, and per-round bit counters
    /// ([`trace_stats`]). With a disabled recorder this is the same run.
    pub fn run_with(&self, cheat: Option<EmbCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "embedded-planarity", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<EmbCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };
        if n <= 2 {
            return rej.into_result(stats);
        }

        // ---- Spanning-tree commitment + verification ----
        let stage1 = span(rec, 0, SpanId::at("embedded-planarity/stage", 1));
        let root = 0;
        let tree = if cheat == Some(EmbCheat::FakeTree) {
            // A non-spanning "tree": BFS stopped halfway, rest are roots.
            let full = RootedForest::bfs_spanning_tree(g, root);
            let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
            for v in 0..n / 2 {
                if let (Some(p), Some(e)) = (full.parent(v), full.parent_edge(v)) {
                    parent[v] = Some((p, e));
                }
            }
            RootedForest::from_parents(g, parent)
        } else {
            RootedForest::bfs_spanning_tree(g, root)
        };
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        let st_coins = st.draw_coins(n, &mut rng);
        let st_msgs = st.honest_response_traced(&tree, &st_coins, rec);
        for v in 0..n {
            st.check(g, v, tree.parent(v), tree.parent(v).is_none(), &st_coins, &st_msgs, &mut rej);
        }
        if !tree.is_spanning_tree(g) {
            stats.per_round_max_bits = vec![8, st.msg_bits(), 0];
            stats.coin_bits = n * st.coin_bits();
            return rej.into_result(stats);
        }

        drop(stage1);

        // ---- The reduction + simulated path-outerplanarity on h ----
        let _stage2 = span(rec, 0, SpanId::at("embedded-planarity/stage", 2));
        let red = build_reduction(g, &self.inst.rho, &tree, root);
        // Observe-only capture of the reduction shape for replay: the
        // auxiliary graph h and the Hamiltonian-path witness are pure
        // functions of (g, rho, tree), so their summary pins the stage-2
        // input deterministically.
        pdip_core::capture::emit("emb/reduction", |s| {
            s.put_usize(red.h.n());
            s.put_usize(red.h.m());
            s.put_usize(red.path.len());
            for &v in &red.path {
                s.put_usize(v);
            }
        });
        let pop_inst = PopInstance {
            witness: Some(red.path.clone()),
            is_yes: self.inst.is_yes,
            graph: red.h.clone(),
        };
        let sub = PathOuterplanarity::new(&pop_inst, self.params, self.transport);
        let sub_cheat = match cheat {
            Some(EmbCheat::HonestSweep) => Some(PopCheat::NestingHonestSweep),
            Some(EmbCheat::ForceMark) => Some(PopCheat::NestingForceMark),
            _ => None,
        };
        let res = sub.run_with(sub_cheat, rng.gen(), rec);
        // Each original node simulates at most 5 copies of h — multiply the
        // per-round bounds accordingly (§7 simulation argument).
        let mut sub_stats = res.stats.clone();
        for b in sub_stats.per_round_max_bits.iter_mut() {
            *b *= 5;
        }
        stats.merge_parallel(&sub_stats);
        let own = SizeStats {
            per_round_max_bits: vec![8, st.msg_bits(), 0],
            per_round_total_bits: vec![],
            coin_bits: n * st.coin_bits(),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        for ((copy, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
            let orig = red.copy_of.get(copy).copied().unwrap_or(0);
            rej.reject_as(orig, kind, format!("emb/h: {reason}"));
        }
        rej.into_result(stats)
    }
}

impl DipProtocol for EmbeddedPlanarity<'_> {
    fn name(&self) -> String {
        "embedded-planarity".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["honest-sweep".into(), "force-mark".into(), "fake-tree".into()]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(EMB_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(EMB_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::planar::{random_planar, random_triangulation, scrambled_embedding};
    use pdip_graph::outerplanar::is_path_outerplanar_with;

    #[test]
    fn lemma_7_3_forward() {
        // Valid embeddings reduce to path-outerplanar graphs.
        let mut rng = SmallRng::seed_from_u64(91);
        for n in [4usize, 8, 20, 60] {
            for keep in [0.3, 0.9] {
                let inst = random_planar(n, keep, &mut rng);
                let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
                let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
                assert!(is_path_outerplanar_with(&red.h, &red.path), "n={n} keep={keep}");
            }
        }
    }

    #[test]
    fn lemma_7_3_reverse() {
        // Invalid embeddings reduce to crossing (non-nested) instances.
        let mut rng = SmallRng::seed_from_u64(92);
        let mut crossing = 0;
        let trials = 20;
        for _ in 0..trials {
            let inst = scrambled_embedding(30, &mut rng);
            let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
            let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
            if !is_path_outerplanar_with(&red.h, &red.path) {
                crossing += 1;
            }
        }
        assert!(crossing >= trials - 2, "only {crossing}/{trials} reduced to crossings");
    }

    #[test]
    fn reduction_shape() {
        let mut rng = SmallRng::seed_from_u64(93);
        let inst = random_triangulation(12, &mut rng);
        let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
        assert_eq!(red.h.n(), (2 * 12 - 1) + 2 * (inst.graph.m() - 11));
        assert_eq!(red.path.len(), red.h.n());
    }

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(94);
        for n in [4usize, 10, 40, 120] {
            let gen = random_planar(n, 0.6, &mut rng);
            let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: true };
            let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
            for seed in 0..3 {
                let res = p.run_honest(seed);
                assert!(res.accepted(), "n={n}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn scrambled_embeddings_rejected() {
        let mut rng = SmallRng::seed_from_u64(95);
        for cheat in [EmbCheat::HonestSweep, EmbCheat::ForceMark] {
            let mut accepted = 0;
            for seed in 0..60 {
                let gen = scrambled_embedding(25, &mut rng);
                let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: false };
                let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
                if p.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 6, "{cheat:?}: accepted {accepted}/60");
        }
    }

    #[test]
    fn fake_tree_rejected() {
        let mut rng = SmallRng::seed_from_u64(96);
        let gen = random_planar(30, 0.5, &mut rng);
        let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: true };
        let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
        let mut accepted = 0;
        for seed in 0..100 {
            if p.run(Some(EmbCheat::FakeTree), seed).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 10, "fake tree accepted {accepted}/100");
    }
}
