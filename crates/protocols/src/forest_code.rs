//! Spanning-forest encoding with constant-size labels (Lemma 2.3).
//!
//! The prover communicates a rooted spanning forest `F` of a planar graph
//! to the verifier using O(1)-bit labels: contract the tree edges leaving
//! odd-depth nodes to get `G_odd`, those leaving even-depth nodes to get
//! `G_even`, properly color both (contractions of planar graphs are planar,
//! hence O(1)-colorable — we use a degeneracy-greedy coloring, see
//! DESIGN.md §3.1), and label each node with its two colors and its depth
//! parity. A node finds its parent as the unique neighbor of opposite
//! parity sharing the appropriate color, and its children symmetrically.
//!
//! The encoding is *communication only*: it does not certify that `F` is a
//! spanning forest (that is Lemma 2.5, [`crate::spanning_tree`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use pdip_core::bits_for_domain;
use pdip_graph::degeneracy::greedy_coloring;
use pdip_graph::{Graph, NodeId, RootedForest};
use pdip_obs::{counter, span, Recorder, SpanId};

/// The Lemma 2.3 label of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestCodeLabel {
    /// Color of the node's class in `G_odd`.
    pub c1: u32,
    /// Color of the node's class in `G_even`.
    pub c2: u32,
    /// Depth parity in the forest (`depth mod 2 == 1`).
    pub odd: bool,
    /// Whether the node is a root of its tree (depth 0, no parent).
    pub root: bool,
}

/// An encoded rooted spanning forest.
#[derive(Debug, Clone)]
pub struct ForestCode {
    /// Per-node labels.
    pub labels: Vec<ForestCodeLabel>,
    /// Number of colors used (determines the label width).
    pub colors: usize,
}

impl ForestCode {
    /// Encodes `forest` over `g`.
    pub fn encode(g: &Graph, forest: &RootedForest) -> Self {
        let n = g.n();
        // Union-find for the two contractions.
        let mut uf_odd: Vec<NodeId> = (0..n).collect();
        let mut uf_even: Vec<NodeId> = (0..n).collect();
        fn find(uf: &mut [NodeId], mut x: NodeId) -> NodeId {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        for v in 0..n {
            if let Some(p) = forest.parent(v) {
                let uf = if forest.depth(v) % 2 == 1 { &mut uf_odd } else { &mut uf_even };
                let (rv, rp) = (find(uf, v), find(uf, p));
                if rv != rp {
                    uf[rv] = rp;
                }
            }
        }
        // Quotient graphs and their colorings.
        let color_quotient = |uf: &mut Vec<NodeId>| -> (Vec<u32>, usize) {
            let mut rep_index = vec![usize::MAX; n];
            let mut reps = Vec::new();
            // comp[v] = dense index of v's class; computing it once here
            // spares the edge loop below (and the per-node relabel at the
            // end) a find() per endpoint.
            let mut comp = vec![0usize; n];
            for v in 0..n {
                let r = find(uf, v);
                if rep_index[r] == usize::MAX {
                    rep_index[r] = reps.len();
                    reps.push(r);
                }
                comp[v] = rep_index[r];
            }
            // Dedup projected edges with an open-addressed table keyed on
            // the packed (min, max) pair — deterministic and allocation-lean
            // where a std HashSet would pay SipHash per edge. Insertion into
            // `q` happens at each pair's first occurrence in edge order,
            // exactly as the set-based version did, so the quotient (and
            // hence the coloring and the captured labels) is unchanged.
            let cap = (2 * g.m().max(8)).next_power_of_two();
            let mut table = vec![u64::MAX; cap];
            let mut q = Graph::new(reps.len());
            for e in g.edges() {
                let (a, b) = (comp[e.u], comp[e.v]);
                if a == b {
                    continue;
                }
                // min < max < 2^32, so u64::MAX is never a valid key.
                let key = ((a.min(b) as u64) << 32) | a.max(b) as u64;
                let mut slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (cap - 1);
                loop {
                    match table[slot] {
                        k if k == key => break,
                        u64::MAX => {
                            table[slot] = key;
                            q.add_edge(a, b);
                            break;
                        }
                        _ => slot = (slot + 1) & (cap - 1),
                    }
                }
            }
            let (colors, count) = greedy_coloring(&q);
            let per_node: Vec<u32> = comp.iter().map(|&c| colors[c] as u32).collect();
            (per_node, count)
        };
        let (c1, k1) = color_quotient(&mut uf_odd);
        let (c2, k2) = color_quotient(&mut uf_even);
        let labels = (0..n)
            .map(|v| ForestCodeLabel {
                c1: c1[v],
                c2: c2[v],
                odd: forest.depth(v) % 2 == 1,
                root: forest.parent(v).is_none(),
            })
            .collect();
        ForestCode { labels, colors: k1.max(k2).max(1) }
    }

    /// Label width in bits: two colors, the parity bit and the root bit.
    pub fn label_bits(&self) -> usize {
        2 * bits_for_domain(self.colors) + 2
    }

    /// [`ForestCode::encode`] under a Lemma 2.3 span with a
    /// `label_bits` counter; the encoding itself is untouched.
    pub fn encode_traced(g: &Graph, forest: &RootedForest, rec: &dyn Recorder) -> Self {
        let id = SpanId::new("lemma2.3/forest-code");
        let _g = span(rec, 0, id);
        let code = Self::encode(g, forest);
        counter(rec, 0, id, "label_bits", code.label_bits() as u64);
        // Observe-only capture of the round-1 commitment labels for
        // stored-transcript replay.
        pdip_core::capture::emit("lemma2.3/forest-code", |s| {
            s.put_usize(code.colors);
            for l in &code.labels {
                s.put_u32(l.c1);
                s.put_u32(l.c2);
                s.put_bool(l.odd);
                s.put_bool(l.root);
            }
        });
        code
    }
}

/// Locally decodes the parent of `v` from the labels of `v` and its
/// neighbors: the unique opposite-parity neighbor sharing the color of the
/// contraction in which the edge `(v, parent)` was contracted. Returns
/// `None` for roots or malformed labelings (zero or multiple candidates).
pub fn decode_parent(g: &Graph, labels: &[ForestCodeLabel], v: NodeId) -> Option<NodeId> {
    let me = *labels.get(v)?;
    if me.root {
        return None;
    }
    let mut found = None;
    for u in g.neighbor_nodes(v) {
        let Some(nb) = labels.get(u).copied() else {
            return None; // truncated labeling: malformed encoding
        };
        if nb.odd == me.odd {
            continue;
        }
        // Edge (v, parent) is contracted in G_odd when v has odd depth,
        // in G_even when v has even depth.
        let matches = if me.odd { nb.c1 == me.c1 } else { nb.c2 == me.c2 };
        if matches {
            if found.is_some() {
                return None; // ambiguous: malformed encoding
            }
            found = Some(u);
        }
    }
    found
}

/// Locally decodes the children of `v`: the opposite-parity neighbors `u`
/// whose contracted color (in the contraction merging `u` into `v`)
/// matches. Symmetric to [`decode_parent`], so a consistent labeling makes
/// `u ∈ children(v) ⇔ parent(u) = v` whenever `u`'s decode is unambiguous.
pub fn decode_children(g: &Graph, labels: &[ForestCodeLabel], v: NodeId) -> Vec<NodeId> {
    let Some(me) = labels.get(v).copied() else {
        return Vec::new();
    };
    g.neighbor_nodes(v)
        .filter(|&u| {
            let Some(nb) = labels.get(u).copied() else {
                return false;
            };
            if nb.odd == me.odd || nb.root {
                return false;
            }
            // Child u of odd depth contracts into v via G_odd (c1); child of
            // even depth via G_even (c2).
            let matches = if nb.odd { nb.c1 == me.c1 } else { nb.c2 == me.c2 };
            // Require the child's own decode to be unambiguous and equal v.
            matches && decode_parent(g, labels, u) == Some(v)
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::planar::random_planar;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn roundtrip(g: &Graph, f: &RootedForest) {
        let code = ForestCode::encode(g, f);
        for v in 0..g.n() {
            assert_eq!(decode_parent(g, &code.labels, v), f.parent(v), "parent of {v}");
            let mut dec = decode_children(g, &code.labels, v);
            let mut want = f.children(v).to_vec();
            dec.sort_unstable();
            want.sort_unstable();
            assert_eq!(dec, want, "children of {v}");
        }
    }

    #[test]
    fn path_roundtrip() {
        let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
        let f = RootedForest::from_path(&g, &[0, 1, 2, 3, 4, 5]);
        roundtrip(&g, &f);
    }

    #[test]
    fn bfs_tree_roundtrip_on_random_planar() {
        let mut rng = SmallRng::seed_from_u64(51);
        for n in [5usize, 20, 100] {
            for keep in [0.2, 0.7] {
                let inst = random_planar(n, keep, &mut rng);
                let f = RootedForest::bfs_spanning_tree(&inst.graph, 0);
                roundtrip(&inst.graph, &f);
            }
        }
    }

    #[test]
    fn multi_tree_forest_roundtrip() {
        // Forest with two roots on a cycle graph.
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; 6];
        // Tree A: 0 <- 1 <- 2; tree B: 3 <- 4 <- 5.
        parent[1] = Some((0, g.edge_between(0, 1).unwrap()));
        parent[2] = Some((1, g.edge_between(1, 2).unwrap()));
        parent[4] = Some((3, g.edge_between(3, 4).unwrap()));
        parent[5] = Some((4, g.edge_between(4, 5).unwrap()));
        let f = RootedForest::from_parents(&g, parent);
        roundtrip(&g, &f);
    }

    #[test]
    fn labels_are_constant_size_on_planar() {
        let mut rng = SmallRng::seed_from_u64(52);
        let inst = random_planar(300, 0.8, &mut rng);
        let f = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let code = ForestCode::encode(&inst.graph, &f);
        // Contracted planar graphs are planar, hence <= 6 greedy colors:
        // 2 * 3 + 2 = 8 bits.
        assert!(code.colors <= 6, "colors = {}", code.colors);
        assert!(code.label_bits() <= 8);
    }

    #[test]
    fn star_roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let f = RootedForest::bfs_spanning_tree(&g, 0);
        roundtrip(&g, &f);
        let f2 = RootedForest::bfs_spanning_tree(&g, 3);
        roundtrip(&g, &f2);
    }
}
