//! The series-parallel protocol (Theorem 1.6, §8 of the paper).
//!
//! The prover commits a nested ear decomposition `P_1, ..., P_k`
//! (Lemma 8.1): the sub-ears `P'_i` (ears minus their endpoints; `P'_1 =
//! P_1`) form a spanning forest of node-disjoint paths, encoded with the
//! Lemma 2.3 forest code; connecting edges tie each sub-ear's endpoints to
//! its ear's endpoints. Verification:
//!
//! * each forest component is certified a simple path (degree ≤ 2 +
//!   Lemma 2.5 on the component);
//! * **condition (1)** — every sub-ear head samples an ear tag `r_Q`; the
//!   prover distributes `(ear(v), pred_ear(v))`; endpoints check their
//!   `pred_ear` equals the host's `ear` through the connecting edge, and
//!   single-edge ears check both endpoints carry the same `ear` tag;
//! * **condition (3)** — per host ear, the hosted ears act as virtual arcs
//!   and a path-outerplanarity run (Theorem 1.2 machinery) certifies
//!   proper nesting; virtual-arc labels are replicated along the guest
//!   sub-ear so both host endpoints can read them.
//!
//! Condition (2) (fresh interiors) follows from the forest structure:
//! every node lies in exactly one sub-ear.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::lr_sorting::Transport;
use crate::path_outerplanar::{PathOuterplanarity, PopCheat, PopInstance, PopParams};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{trace_stats, DipProtocol, Rejections, RunResult, SizeStats, Tag};
use pdip_graph::ear::EarDecomposition;
use pdip_graph::{Graph, NodeId, RootedForest};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A series-parallel instance.
#[derive(Debug, Clone)]
pub struct SpaInstance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// Ground truth.
    pub is_yes: bool,
}

/// Cheating strategies on non-series-parallel instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaCheat {
    /// Remove edges until the graph becomes series-parallel, decompose the
    /// remainder honestly, and disguise each removed edge as a single-edge
    /// ear (its endpoints usually lie on different ears → the ear-tag
    /// check catches it with probability 1 − 1/polylog n).
    HideExtraEdges,
    /// Commit a greedy path forest with arbitrary host claims.
    FakeForest,
}

/// All cheats in interface order.
pub const SPA_CHEATS: [SpaCheat; 2] = [SpaCheat::HideExtraEdges, SpaCheat::FakeForest];

/// The series-parallel DIP bound to an instance.
#[derive(Debug)]
pub struct SeriesParallel<'a> {
    inst: &'a SpaInstance,
    params: PopParams,
    transport: Transport,
    tag_bits: usize,
}

/// The prover's committed decomposition: ear paths + host indices, plus
/// the set of edges disguised as single-edge ears whose host claims are
/// forged (cheats only).
struct Commitment {
    ears: Vec<(Vec<NodeId>, Option<usize>)>,
    /// Extra edges presented as single-edge ears hosted "wherever".
    disguised: Vec<usize>,
}

impl<'a> SeriesParallel<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a SpaInstance, params: PopParams, transport: Transport) -> Self {
        let n = inst.graph.n().max(4);
        let loglog = ((n as f64).log2()).log2().ceil() as usize;
        let tag_bits = ((params.c as usize) * loglog + 4).min(60);
        SeriesParallel { inst, params, transport, tag_bits }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    fn commitment(&self, cheat: Option<SpaCheat>) -> Commitment {
        let g = self.g();
        if let Some(tree) = pdip_graph::sp_tree(g) {
            let d = EarDecomposition::from_sp_tree(&tree);
            return Commitment {
                ears: d.ears.into_iter().map(|e| (e.path, e.host)).collect(),
                disguised: Vec::new(),
            };
        }
        match cheat {
            Some(SpaCheat::HideExtraEdges) | None => {
                // Remove edges greedily until series-parallel.
                let mut removed: Vec<usize> = Vec::new();
                let mut keep = vec![true; g.m()];
                loop {
                    let sub = subgraph(g, &keep);
                    if let Some(tree) = pdip_graph::sp_tree(&sub) {
                        let d = EarDecomposition::from_sp_tree(&tree);
                        return Commitment {
                            ears: d.ears.into_iter().map(|e| (e.path, e.host)).collect(),
                            disguised: removed,
                        };
                    }
                    // Remove the next non-bridge edge.
                    let next = (0..g.m()).find(|&e| {
                        if !keep[e] {
                            return false;
                        }
                        keep[e] = false;
                        let still = subgraph(g, &keep).is_connected();
                        keep[e] = true;
                        still
                    });
                    match next {
                        Some(e) => {
                            keep[e] = false;
                            removed.push(e);
                        }
                        None => {
                            return Commitment { ears: greedy_path_forest(g), disguised: removed }
                        }
                    }
                }
            }
            Some(SpaCheat::FakeForest) => {
                Commitment { ears: greedy_path_forest(g), disguised: Vec::new() }
            }
        }
    }

    /// One full run.
    pub fn run(&self, cheat: Option<SpaCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`SeriesParallel::run`] with an instrumentation [`Recorder`]: stage
    /// spans, the Theorem 1.2 sub-run traces per host ear, and per-round
    /// bit counters ([`trace_stats`]). With a disabled recorder this is
    /// the same run.
    pub fn run_with(&self, cheat: Option<SpaCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "series-parallel", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<SpaCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };
        if n <= 2 || g.m() == 0 {
            return rej.into_result(stats);
        }
        let stage1 = span(rec, 0, SpanId::at("series-parallel/stage", 1));
        let com = self.commitment(cheat);
        let ears = &com.ears;

        // Sub-ears: P'_1 = P_1; for i > 0 the interior path.
        let sub_ear: Vec<Vec<NodeId>> = ears
            .iter()
            .enumerate()
            .map(|(i, (p, _))| {
                if i == 0 {
                    p.clone()
                } else if p.len() >= 2 {
                    p[1..p.len() - 1].to_vec()
                } else {
                    Vec::new() // degenerate committed ear (cheats only)
                }
            })
            .collect();
        // Home sub-ear of each node.
        let mut home = vec![usize::MAX; n];
        let mut covered = true;
        for (i, se) in sub_ear.iter().enumerate() {
            for &v in se {
                if home[v] != usize::MAX {
                    covered = false;
                }
                home[v] = i;
            }
        }
        covered &= home.iter().all(|&h| h != usize::MAX);

        // ---- Spanning forest F = ∪ P'_i, verified per component ----
        let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
        let mut structure_ok = covered;
        for se in &sub_ear {
            for w in se.windows(2) {
                match g.edge_between(w[0], w[1]) {
                    Some(e) if parent[w[1]].is_none() => parent[w[1]] = Some((w[0], e)),
                    _ => structure_ok = false,
                }
            }
        }
        if !structure_ok {
            // Broken commitment: conservative immediate reject via local
            // coverage checks (a node outside every sub-ear sees no
            // consistent forest code).
            rej.reject_malformed(0, "spa: committed sub-ears do not partition the nodes");
            return rej.into_result(stats);
        }
        let forest = RootedForest::from_parents(g, parent);
        // Degree-≤-2-in-F is structural for the honest commitment; the
        // component path structure is certified through the ear tags below
        // (a broken component mixes tags across sub-ears), with the
        // Lemma 2.5 machinery supplying the size/coin accounting for the
        // per-component path verification of the paper.
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        drop(stage1);
        // ---- Condition (1): ear tags ----
        let stage2 = span(rec, 0, SpanId::at("series-parallel/stage", 2));
        // Every ear draws a random tag (sampled by its sub-ear head —
        // here: by index, the coins being public). Node labels carry
        // (ear, pred_ear); connecting edges and single-edge-ear edges
        // carry their guest ear's (host_tag, guest_tag) so *both* sides
        // can verify membership: a node u lies on ear j's path iff u is
        // interior to it (ear(u) = r_j) or an endpoint of it — witnessed
        // by an incident connecting edge whose guest tag is r_j with u on
        // the host side.
        let ear_tag: Vec<Tag> =
            (0..ears.len()).map(|_| Tag::random(self.tag_bits, &mut rng)).collect();
        let node_ear: Vec<Tag> = (0..n).map(|v| ear_tag[home[v]]).collect();
        let node_pred: Vec<Option<Tag>> =
            (0..n).map(|v| ears[home[v]].1.map(|h| ear_tag[h])).collect();
        // Observe-only capture of the ear-tag commitment for replay.
        pdip_core::capture::emit("spa/ear-tags", |s| {
            s.put_usize(ear_tag.len());
            for t in &ear_tag {
                s.put_usize(t.bits);
                s.put_u64(t.value);
            }
            for v in 0..n {
                s.put_u64(node_ear[v].value);
                match node_pred[v] {
                    Some(p) => {
                        s.put_bool(true);
                        s.put_u64(p.value);
                    }
                    None => s.put_bool(false),
                }
            }
        });
        // Edge labels: (host_tag, guest_tag, guest-side endpoint) for
        // connecting edges, (host_tag,) for single-edge ears.
        #[derive(Clone, Copy, PartialEq)]
        enum EdgeClass {
            SubEarPath,
            Connecting { host: Tag, guest: Tag, guest_side: NodeId },
            SingleEdgeEar { host: Option<Tag> },
        }
        let mut class: Vec<EdgeClass> = vec![EdgeClass::SubEarPath; g.m()];
        for (i, (p, host)) in ears.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let host_tag = host.and_then(|h| ear_tag.get(h).copied()).unwrap_or(ear_tag[0]);
            if p.len() < 2 {
                continue; // degenerate committed ear (cheats only)
            }
            if p.len() == 2 {
                if let Some(e) = g.edge_between(p[0], p[1]) {
                    class[e] = EdgeClass::SingleEdgeEar { host: Some(host_tag) };
                }
            } else {
                for (a, b) in [(p[0], p[1]), (p[p.len() - 1], p[p.len() - 2])] {
                    if let Some(e) = g.edge_between(a, b) {
                        class[e] = EdgeClass::Connecting {
                            host: host_tag,
                            guest: ear_tag[i],
                            guest_side: b,
                        };
                    }
                }
            }
        }
        for &e in &com.disguised {
            // The cheat has no real host; it forges the first endpoint's
            // home tag as the host tag.
            class[e] = EdgeClass::SingleEdgeEar { host: Some(node_ear[g.edge(e).u]) };
        }
        // Membership evidence: the set of ear tags each node can prove it
        // lies on (node-local: its own label + incident edge labels).
        let onset = |v: NodeId| -> Vec<Tag> {
            let mut set = vec![node_ear[v]];
            for e in g.incident_edges(v) {
                if let EdgeClass::Connecting { guest, guest_side, .. } = class[e] {
                    if guest_side != v {
                        set.push(guest);
                    }
                }
            }
            set
        };
        // Checks at every node.
        let mut pos_in_subear = vec![0usize; n];
        for se in &sub_ear {
            for (i, &v) in se.iter().enumerate() {
                pos_in_subear[v] = i;
            }
        }
        for v in 0..n {
            let se = &sub_ear[home[v]];
            let my_pos = pos_in_subear[v];
            let i_am_subear_end = my_pos == 0 || my_pos + 1 == se.len();
            // Same (ear, pred) along the sub-ear.
            for w in [my_pos.checked_sub(1), (my_pos + 1 < se.len()).then_some(my_pos + 1)]
                .into_iter()
                .flatten()
            {
                let u = se[w];
                rej.check(v, node_ear[u] == node_ear[v] && node_pred[u] == node_pred[v], || {
                    "spa: ear labels differ along sub-ear".into()
                });
            }
            let my_onset = onset(v);
            for e in g.incident_edges(v) {
                let u = g.edge(e).other(v);
                match class[e] {
                    EdgeClass::Connecting { host, guest, guest_side } => {
                        if guest_side == v {
                            // Guest side: I am my sub-ear's endpoint, my
                            // tags match the edge's claim.
                            rej.check(v, i_am_subear_end, || {
                                "spa: connecting edge at a non-endpoint".into()
                            });
                            rej.check(v, node_ear[v] == guest, || "spa: guest tag mismatch".into());
                            rej.check(v, node_pred[v] == Some(host), || {
                                "spa: pred_ear does not match connecting host".into()
                            });
                        } else {
                            // Host side: I must lie on the host ear's path.
                            rej.check(v, my_onset.contains(&host), || {
                                "spa: attach point not on the host ear".into()
                            });
                        }
                    }
                    EdgeClass::SingleEdgeEar { host } => {
                        let Some(h) = host else {
                            rej.reject_malformed(v, "spa: single-edge ear without host tag");
                            continue;
                        };
                        rej.check(v, my_onset.contains(&h), || {
                            "spa: single-edge ear endpoint not on host ear".into()
                        });
                    }
                    EdgeClass::SubEarPath => {
                        rej.check(v, home[u] == home[v], || {
                            "spa: unclassified edge leaves the sub-ear".into()
                        });
                    }
                }
            }
        }

        drop(stage2);

        // ---- Condition (3): per host ear, nesting of hosted arcs ----
        let _stage3 = span(rec, 0, SpanId::at("series-parallel/stage", 3));
        let mut per_round_max = [0usize; 3];
        for (i, (p, _)) in ears.iter().enumerate() {
            if p.is_empty() {
                continue; // degenerate committed ear (cheats only)
            }
            // Host path plus virtual arcs from each hosted ear.
            let mut remap = std::collections::HashMap::new();
            for (k, &v) in p.iter().enumerate() {
                remap.insert(v, k);
            }
            let mut flat = Graph::new(p.len());
            for k in 0..p.len() - 1 {
                flat.add_edge(k, k + 1);
            }
            let mut ok = true;
            for (j, (q, host)) in ears.iter().enumerate() {
                if *host != Some(i) || j == 0 || q.is_empty() {
                    if *host == Some(i) && j != 0 && q.is_empty() {
                        ok = false; // degenerate hosted ear
                    }
                    continue;
                }
                let (a, b) = (q[0], q[q.len() - 1]);
                match (remap.get(&a), remap.get(&b)) {
                    (Some(&ra), Some(&rb)) if ra != rb => {
                        if ra.abs_diff(rb) > 1 && !flat.has_edge(ra, rb) {
                            flat.add_edge(ra, rb);
                        }
                    }
                    _ => ok = false,
                }
            }
            if !ok {
                rej.reject_malformed(p[0], "spa: hosted ear endpoints not on host");
                continue;
            }
            if flat.n() < 2 {
                continue;
            }
            let witness: Vec<NodeId> = (0..flat.n()).collect();
            let is_yes = pdip_graph::is_path_outerplanar_with(&flat, &witness);
            let pop_inst = PopInstance { graph: flat, witness: Some(witness), is_yes };
            let sub = PathOuterplanarity::new(&pop_inst, self.params, self.transport);
            let sub_cheat = if is_yes { None } else { Some(PopCheat::NestingForceMark) };
            let res = sub.run_with(sub_cheat, rng.gen(), rec);
            for (k, b) in res.stats.per_round_max_bits.iter().enumerate() {
                per_round_max[k] = per_round_max[k].max(*b);
            }
            for ((lv, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
                rej.reject_as(*p.get(lv).unwrap_or(&p[0]), kind, format!("spa/ear {i}: {reason}"));
            }
        }

        // ---- Size accounting ----
        let own = SizeStats {
            per_round_max_bits: vec![
                4 + per_round_max[0], // forest code + edge class flags ride round 1
                2 * (1 + self.tag_bits) + st.msg_bits() + per_round_max[1],
                per_round_max[2],
            ],
            per_round_total_bits: vec![],
            coin_bits: n * (st.coin_bits() + self.tag_bits),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        let _ = forest;
        rej.into_result(stats)
    }
}

/// The subgraph of `g` keeping the flagged edges (node set unchanged).
fn subgraph(g: &Graph, keep: &[bool]) -> Graph {
    let mut h = Graph::new(g.n());
    for (e, edge) in g.edges().iter().enumerate() {
        if keep[e] {
            h.add_edge(edge.u, edge.v);
        }
    }
    h
}

/// A fake decomposition: BFS-tree paths with every later ear claiming the
/// first as host.
fn greedy_path_forest(g: &Graph) -> Vec<(Vec<NodeId>, Option<usize>)> {
    let tree = RootedForest::bfs_spanning_tree(g, 0);
    let mut used = vec![false; g.n()];
    let mut ears: Vec<(Vec<NodeId>, Option<usize>)> = Vec::new();
    let order = tree.bottom_up_order();
    for &leaf in order.iter() {
        if used[leaf] || !tree.children(leaf).is_empty() {
            continue;
        }
        let mut path = vec![leaf];
        used[leaf] = true;
        let mut cur = leaf;
        while let Some(p) = tree.parent(cur) {
            if used[p] {
                break;
            }
            used[p] = true;
            path.push(p);
            cur = p;
        }
        let host = if ears.is_empty() { None } else { Some(0) };
        ears.push((path, host));
    }
    ears
}

impl DipProtocol for SeriesParallel<'_> {
    fn name(&self) -> String {
        "series-parallel".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["hide-extra-edges".into(), "fake-forest".into()]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(SPA_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(SPA_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::tw2_violator;
    use pdip_graph::gen::sp::random_series_parallel;

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(111);
        for size in [1usize, 4, 15, 60] {
            for _ in 0..3 {
                let gen = random_series_parallel(size, &mut rng);
                let inst = SpaInstance { graph: gen.graph, is_yes: true };
                let p = SeriesParallel::new(&inst, PopParams::default(), Transport::Native);
                let res = p.run_honest(rng.gen());
                assert!(res.accepted(), "size={size}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn k4_gadget_rejected() {
        let mut rng = SmallRng::seed_from_u64(112);
        for cheat in SPA_CHEATS {
            let mut accepted = 0;
            for seed in 0..40 {
                let g = tw2_violator(2, 1, &mut rng);
                let inst = SpaInstance { graph: g, is_yes: false };
                let p = SeriesParallel::new(&inst, PopParams::default(), Transport::Native);
                if p.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 4, "{cheat:?} accepted {accepted}/40");
        }
    }

    #[test]
    fn plain_k4_rejected() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let inst = SpaInstance { graph: g, is_yes: false };
        let p = SeriesParallel::new(&inst, PopParams::default(), Transport::Native);
        let mut accepted = 0;
        for seed in 0..60 {
            if p.run(Some(SpaCheat::HideExtraEdges), seed).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 6, "K4 accepted {accepted}/60");
    }
}
