//! The outerplanarity protocol (Theorems 1.3 and 6.1, §6 of the paper).
//!
//! Theorem 6.1: a biconnected graph is outerplanar iff it is
//! path-outerplanar w.r.t. a Hamiltonian path whose endpoints are joined
//! by an edge — so a biconnected block is verified by the Theorem 1.2
//! protocol plus one endpoint check. For general graphs the prover commits
//! the rooted block–cut tree: for every non-root block `C` a Hamiltonian
//! path `P_C` leaving the *C-separating* cut node through the *C-leader*;
//! the sub-paths `P'_C` (a spanning forest of paths) and the connecting
//! edges `e_C` are encoded with the Lemma 2.3 forest code. Random tags at
//! cut nodes and leaders let every non-cut node check that all its
//! neighbors live in its own block; the union `∪ P_C` is certified a
//! spanning tree (Lemma 2.5); the block depths `d(C) mod 3` let every node
//! identify its block's separating node. Each block then runs the
//! biconnected-outerplanarity protocol in parallel (with the separating
//! node's labels deferred to its in-block neighbors, so cut nodes carry
//! O(1) blocks' worth of bits).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::lr_sorting::Transport;
use crate::path_outerplanar::{PathOuterplanarity, PopCheat, PopInstance, PopParams};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{trace_stats, DipProtocol, Rejections, RunResult, SizeStats, Tag};
use pdip_graph::outerplanar::outer_cycle;
use pdip_graph::{BlockCutTree, Graph, NodeId, RootedForest};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An outerplanarity instance.
#[derive(Debug, Clone)]
pub struct OpInstance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// Ground truth.
    pub is_yes: bool,
}

/// Cheating strategies: which attack to run inside the offending block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCheat {
    /// Commit a non-Hamiltonian path in the non-outerplanar block.
    FakeBlockPath,
    /// Honest sweep labels inside the bad block.
    BlockHonestSweep,
    /// Force-mark a violating arc inside the bad block.
    BlockForceMark,
}

/// All cheats in [`Outerplanarity::cheat_names`] order.
pub const OP_CHEATS: [OpCheat; 3] =
    [OpCheat::FakeBlockPath, OpCheat::BlockHonestSweep, OpCheat::BlockForceMark];

/// The outerplanarity DIP bound to an instance.
#[derive(Debug)]
pub struct Outerplanarity<'a> {
    inst: &'a OpInstance,
    params: PopParams,
    transport: Transport,
    tag_bits: usize,
}

impl<'a> Outerplanarity<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a OpInstance, params: PopParams, transport: Transport) -> Self {
        let n = inst.graph.n().max(4);
        let loglog = ((n as f64).log2()).log2().ceil() as usize;
        let tag_bits = ((params.c as usize) * loglog + 4).min(60);
        Outerplanarity { inst, params, transport, tag_bits }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// One full run.
    pub fn run(&self, cheat: Option<OpCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`Outerplanarity::run`] with an instrumentation [`Recorder`]: stage
    /// spans, Lemma 2.3/2.5 primitive spans, and per-round bit counters
    /// ([`trace_stats`]). With a disabled recorder this is the same run.
    pub fn run_with(&self, cheat: Option<OpCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "outerplanarity", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<OpCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };
        if n <= 1 || g.m() == 0 {
            return rej.into_result(stats);
        }

        // ---- The prover's block-cut decomposition ----
        let bct = BlockCutTree::rooted(g);
        let k = bct.block_count();
        // Per block: its node set and a Hamiltonian path starting at its
        // separating node (root block: any endpoint).
        let mut block_paths: Vec<Vec<NodeId>> = Vec::with_capacity(k);
        let mut block_ok = vec![true; k];
        for c in 0..k {
            let nodes = bct.bcc.component_nodes(g, c);
            let path = block_hamiltonian_path(g, &nodes, bct.separating_node[c]);
            match path {
                Some(p) => block_paths.push(p),
                None => {
                    // Non-outerplanar block: the cheat decides what the
                    // prover commits (a greedy non-spanning path).
                    block_ok[c] = false;
                    block_paths.push(greedy_block_path(g, &nodes, bct.separating_node[c]));
                }
            }
        }

        // ---- Stage 1: component-membership tags ----
        let stage1 = span(rec, 0, SpanId::at("outerplanarity/stage", 1));
        // Per node: cut-node flag, leader flag, sep/lead tag echoes.
        let is_cut: Vec<bool> = (0..n).map(|v| bct.bcc.is_cut_node[v]).collect();
        let mut leader_of_block: Vec<Option<NodeId>> = vec![None; k];
        for c in 0..k {
            // The leader is the first node after the separating node.
            let p = &block_paths[c];
            let lead = if bct.separating_node[c].is_some() && p.len() >= 2 { p[1] } else { p[0] };
            leader_of_block[c] = Some(lead);
        }
        let tags: Vec<Tag> = (0..n).map(|_| Tag::random(self.tag_bits, &mut rng)).collect();
        // Observe-only capture of the per-node block tags for replay.
        pdip_core::capture::emit("op/block-tags", |s| {
            s.put_usize(n);
            for t in &tags {
                s.put_usize(t.bits);
                s.put_u64(t.value);
            }
        });
        // Home block of each node: the block where it is *not* separating.
        let mut home_block = vec![usize::MAX; n];
        for c in 0..k {
            for &v in &bct.bcc.component_nodes(g, c) {
                if bct.separating_node[c] != Some(v) {
                    home_block[v] = c;
                }
            }
        }
        // Every node of a connected graph has a home block; a decomposition
        // that leaves one homeless is structurally broken — reject instead
        // of indexing with the sentinel (which would panic).
        if let Some(orphan) = home_block.iter().position(|&c| c == usize::MAX) {
            rej.reject_malformed(orphan, "op: node without a home block in the decomposition");
            stats.per_round_max_bits = vec![self.tag_bits * 2 + 4, 0, 0];
            return rej.into_result(stats);
        }
        // Labels sep(v) / lead(v) for v's home block.
        let sep_tag: Vec<Option<Tag>> =
            (0..n).map(|v| bct.separating_node[home_block[v]].map(|s| tags[s])).collect();
        let zero_tag = Tag::zero(self.tag_bits);
        let lead_tag: Vec<Tag> = (0..n)
            .map(|v| leader_of_block[home_block[v]].map(|l| tags[l]).unwrap_or(zero_tag))
            .collect();
        // d(C) mod 3 per node (home block), cut nodes implicitly also hold
        // home depth - 1 for their child blocks.
        let d_mod3: Vec<u8> = (0..n).map(|v| (bct.block_depth[home_block[v]] % 3) as u8).collect();
        // Checks.
        for v in 0..n {
            let my_home = home_block[v];
            for u in g.neighbor_nodes(v) {
                let same_block = home_block[u] == my_home;
                if !is_cut[v] {
                    // Every neighbor is in my block: either same home tags,
                    // or u is a cut node separating my block (sep == s_u),
                    // or u is *my* separating... u cut with my sep tag.
                    let ok = (same_block && sep_tag[u] == sep_tag[v] && lead_tag[u] == lead_tag[v])
                        || (is_cut[u] && sep_tag[v] == Some(tags[u]));
                    rej.check(v, ok, || "op: neighbor outside my block".into());
                }
                if same_block {
                    rej.check(v, d_mod3[u] == d_mod3[v], || {
                        "op: block depth labels differ within block".into()
                    });
                } else if is_cut[u] && sep_tag[v] == Some(tags[u]) {
                    // u is my block's separating node: its home depth is
                    // mine minus one (mod 3).
                    rej.check(v, (d_mod3[u] + 1) % 3 == d_mod3[v], || {
                        "op: separating node depth inconsistent".into()
                    });
                }
            }
            // Leaders verify their connecting edge reaches the separating node.
            if Some(v)
                == leader_of_block[my_home].filter(|_| bct.separating_node[my_home].is_some())
            {
                let ok = g.neighbor_nodes(v).any(|u| Some(tags[u]) == sep_tag[v] && is_cut[u]);
                rej.check(v, ok, || "op: leader lacks edge to separating node".into());
            }
        }

        drop(stage1);

        // ---- Stage 2: union of block paths is a spanning tree ----
        let stage2 = span(rec, 0, SpanId::at("outerplanarity/stage", 2));
        let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
        let mut union_ok = true;
        for p in &block_paths {
            for w in p.windows(2) {
                let Some(e) = g.edge_between(w[0], w[1]) else {
                    union_ok = false;
                    continue;
                };
                if parent[w[1]].is_some() || home_block[w[1]] == usize::MAX {
                    union_ok = false;
                    continue;
                }
                parent[w[1]] = Some((w[0], e));
            }
        }
        let forest = RootedForest::from_parents(g, parent);
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        let st_coins = st.draw_coins(n, &mut rng);
        let st_msgs = st.honest_response_traced(&forest, &st_coins, rec);
        for v in 0..n {
            st.check(
                g,
                v,
                forest.parent(v),
                forest.parent(v).is_none(),
                &st_coins,
                &st_msgs,
                &mut rej,
            );
        }
        if !union_ok || !forest.is_spanning_tree(g) {
            // Prover committed a broken union; if the probabilistic checks
            // passed anyway the adversary wins this run.
            stats.per_round_max_bits = vec![self.tag_bits * 2 + 4, st.msg_bits(), 0];
            stats.coin_bits = n * (st.coin_bits() + self.tag_bits);
            return rej.into_result(stats);
        }

        drop(stage2);

        // ---- Stage 3: per-block biconnected outerplanarity ----
        let _stage3 = span(rec, 0, SpanId::at("outerplanarity/stage", 3));
        let mut per_round_max = [0usize; 3];
        for c in 0..k {
            let nodes = bct.bcc.component_nodes(g, c);
            if nodes.len() < 3 {
                continue; // single edges are trivially fine
            }
            // Build the block graph from its edges.
            let mut remap = std::collections::HashMap::new();
            for (i, &v) in nodes.iter().enumerate() {
                remap.insert(v, i);
            }
            let mut h = Graph::new(nodes.len());
            for &e in &bct.bcc.components[c] {
                let edge = g.edge(e);
                h.add_edge(remap[&edge.u], remap[&edge.v]);
            }
            let witness: Option<Vec<NodeId>> = if block_ok[c] {
                Some(block_paths[c].iter().map(|v| remap[v]).collect())
            } else {
                None
            };
            // Theorem 6.1 extra condition: the path endpoints are adjacent.
            if let Some(w) = &witness {
                match (w.first(), w.last()) {
                    (Some(&first), Some(&last)) => {
                        rej.check(nodes[0], h.has_edge(first, last), || {
                            "op: block path endpoints not adjacent (Thm 6.1)".into()
                        });
                    }
                    _ => rej.reject_malformed(nodes[0], "op: empty committed block path"),
                }
            }
            let sub_inst = PopInstance { graph: h, witness, is_yes: block_ok[c] };
            let sub = PathOuterplanarity::new(&sub_inst, self.params, self.transport);
            let sub_cheat = if block_ok[c] {
                None
            } else {
                Some(match cheat {
                    Some(OpCheat::BlockHonestSweep) => PopCheat::NestingHonestSweep,
                    Some(OpCheat::BlockForceMark) => PopCheat::NestingForceMark,
                    _ => PopCheat::FakePath,
                })
            };
            let res = sub.run_with(sub_cheat, rng.gen(), rec);
            for (i, b) in res.stats.per_round_max_bits.iter().enumerate() {
                // Parallel per-block executions: a node is charged its own
                // block's labels (the deferral trick bounds cut nodes by a
                // constant number of blocks' labels).
                per_round_max[i] = per_round_max[i].max(*b);
            }
            for ((lv, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
                rej.reject_as(
                    nodes.get(lv).copied().unwrap_or(nodes[0]),
                    kind,
                    format!("op/block {c}: {reason}"),
                );
            }
        }

        // ---- Size accounting ----
        let stage1_bits = 2 + 2 * (1 + self.tag_bits) + 2; // flags + sep/lead + d mod 3
        let own = SizeStats {
            per_round_max_bits: vec![
                stage1_bits + per_round_max[0],
                st.msg_bits() + per_round_max[1],
                per_round_max[2],
            ],
            per_round_total_bits: vec![],
            coin_bits: n * (st.coin_bits() + self.tag_bits),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        rej.into_result(stats)
    }
}

/// A Hamiltonian path of the block on `nodes`, starting at `start` if
/// given (the separating node). Uses the outer-cycle structure of
/// biconnected outerplanar blocks; `None` when the block is not one.
fn block_hamiltonian_path(
    g: &Graph,
    nodes: &[NodeId],
    start: Option<NodeId>,
) -> Option<Vec<NodeId>> {
    if nodes.len() == 1 {
        return Some(nodes.to_vec());
    }
    if nodes.len() == 2 {
        let (a, b) = (nodes[0], nodes[1]);
        return match start {
            Some(s) if s == b => Some(vec![b, a]),
            _ => Some(vec![a, b]),
        };
    }
    let mut remap = std::collections::HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        remap.insert(v, i);
    }
    let (h, map) = g.induced_subgraph(nodes);
    let cycle_local = outer_cycle(&h)?;
    let mut cycle: Vec<NodeId> = cycle_local.iter().map(|&v| map[v]).collect();
    if let Some(s) = start {
        let pos = cycle.iter().position(|&v| v == s)?;
        cycle.rotate_left(pos);
    }
    Some(cycle)
}

/// Greedy (generally non-spanning) fallback path inside a block.
fn greedy_block_path(g: &Graph, nodes: &[NodeId], start: Option<NodeId>) -> Vec<NodeId> {
    let inside: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    let s = start.unwrap_or(nodes[0]);
    let mut path = vec![s];
    let mut used = std::collections::HashSet::new();
    used.insert(s);
    let mut last = s;
    loop {
        let next = g.neighbor_nodes(last).find(|u| inside.contains(u) && !used.contains(u));
        match next {
            Some(u) => {
                used.insert(u);
                path.push(u);
                last = u;
            }
            None => break,
        }
    }
    path
}

impl DipProtocol for Outerplanarity<'_> {
    fn name(&self) -> String {
        "outerplanarity".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["fake-block-path".into(), "block-honest-sweep".into(), "block-force-mark".into()]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(OP_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(OP_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::planar_not_outerplanar;
    use pdip_graph::gen::outerplanar::random_outerplanar;
    use pdip_graph::is_outerplanar;

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(81);
        for (n, blocks) in [(6usize, 2usize), (20, 4), (60, 8), (40, 1)] {
            for _ in 0..3 {
                let gen = random_outerplanar(n, blocks, 0.5, &mut rng);
                assert!(is_outerplanar(&gen.graph));
                let inst = OpInstance { graph: gen.graph, is_yes: true };
                let op = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
                let res = op.run_honest(rng.gen());
                assert!(res.accepted(), "n={n} blocks={blocks}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn crossing_chords_rejected() {
        let mut rng = SmallRng::seed_from_u64(82);
        for cheat in OP_CHEATS {
            let mut accepted = 0;
            for seed in 0..60 {
                let g = planar_not_outerplanar(12, &mut rng);
                let inst = OpInstance { graph: g, is_yes: false };
                let op = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
                if op.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 6, "{cheat:?} accepted {accepted}/60");
        }
    }

    #[test]
    fn k4_block_rejected() {
        // K4 hanging off an outerplanar host.
        let mut g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = g.add_node();
        g.add_edge(3, t);
        let u = g.add_node();
        g.add_edge(t, u);
        let inst = OpInstance { graph: g, is_yes: false };
        let op = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
        let mut accepted = 0;
        for seed in 0..100 {
            if op.run(Some(OpCheat::BlockForceMark), seed).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 10, "K4 block accepted {accepted}/100");
    }

    #[test]
    fn single_edge_graph() {
        let inst = OpInstance { graph: Graph::from_edges(2, [(0, 1)]), is_yes: true };
        let op = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
        assert!(op.run_honest(1).accepted());
    }
}
