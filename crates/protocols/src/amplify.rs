//! Parallel repetition of whole DIPs.
//!
//! The paper amplifies constant-soundness building blocks by parallel
//! repetition (remark after Lemma 2.5): `k` independent copies run in the
//! same rounds, every node rejects if any copy rejects, completeness is
//! preserved and the soundness error is raised to the k-th power, at a
//! ×k cost in label size. [`Amplified`] wraps any [`DipProtocol`] the same
//! way; the E8 ablation and the failure-injection tests use it to trade
//! label bits against soundness at the protocol level rather than inside
//! the sub-protocols.

use pdip_core::{DipProtocol, RunResult, SizeStats, Verdict};

/// A `k`-fold parallel repetition of an inner protocol.
#[derive(Debug)]
pub struct Amplified<P> {
    inner: P,
    k: usize,
}

impl<P: DipProtocol> Amplified<P> {
    /// Wraps `inner` with `k ≥ 1` parallel copies.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(inner: P, k: usize) -> Self {
        assert!(k >= 1, "at least one repetition required");
        Amplified { inner, k }
    }

    /// The inner protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn combine(&self, runs: Vec<RunResult>) -> RunResult {
        let mut stats = SizeStats { rounds: runs[0].stats.rounds, ..Default::default() };
        let mut rejections = Vec::new();
        let mut kinds = Vec::new();
        let mut verdict = Verdict::Accept;
        for (copy, r) in runs.into_iter().enumerate() {
            stats.merge_parallel(&r.stats);
            if !r.accepted() {
                verdict = Verdict::Reject;
                for ((v, reason), kind) in r.rejections.into_iter().zip(r.kinds) {
                    if rejections.len() < 16 {
                        rejections.push((v, format!("copy {copy}: {reason}")));
                        kinds.push(kind);
                    }
                }
            }
        }
        RunResult { verdict, stats, rejections, kinds }
    }
}

impl<P: DipProtocol> DipProtocol for Amplified<P> {
    fn name(&self) -> String {
        format!("{} x{}", self.inner.name(), self.k)
    }

    fn rounds(&self) -> usize {
        self.inner.rounds()
    }

    fn instance_size(&self) -> usize {
        self.inner.instance_size()
    }

    fn is_yes_instance(&self) -> bool {
        self.inner.is_yes_instance()
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        let runs = (0..self.k)
            .map(|i| self.inner.run_honest(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64)))
            .collect();
        self.combine(runs)
    }

    fn cheat_names(&self) -> Vec<String> {
        self.inner.cheat_names()
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        let runs = (0..self.k)
            .map(|i| {
                self.inner
                    .run_cheat(strategy, seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64))
            })
            .collect();
        self.combine(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr_sorting::Transport;
    use crate::path_outerplanar::{PathOuterplanarity, PopInstance, PopParams};
    use pdip_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn amplification_preserves_completeness() {
        let mut rng = SmallRng::seed_from_u64(141);
        let g = gen::outerplanar::random_path_outerplanar(60, 0.6, &mut rng);
        let inst = PopInstance { graph: g.graph, witness: Some(g.path), is_yes: true };
        let base = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        let amp = Amplified::new(base, 3);
        assert_eq!(amp.rounds(), 5);
        for seed in 0..10 {
            let r = amp.run_honest(seed);
            assert!(r.accepted(), "{:?}", r.rejections.first());
        }
    }

    #[test]
    fn amplification_multiplies_label_sizes() {
        let mut rng = SmallRng::seed_from_u64(142);
        let g = gen::outerplanar::random_path_outerplanar(80, 0.6, &mut rng);
        let inst = PopInstance { graph: g.graph, witness: Some(g.path), is_yes: true };
        let base = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        let single = base.run_honest(1).stats.proof_size();
        let amp = Amplified::new(base, 4);
        let quad = amp.run_honest(1).stats.proof_size();
        assert_eq!(quad, 4 * single);
    }

    #[test]
    fn amplification_reduces_cheat_survival() {
        // One-extra-root fake path: survival ~1/#primes per copy.
        let n = 40;
        let mut g = pdip_graph::Graph::from_edges(n - 1, (0..n - 2).map(|i| (i, i + 1)));
        let pend = g.add_node();
        g.add_edge(n / 2, pend);
        let inst = PopInstance { graph: g, witness: None, is_yes: false };
        let params = PopParams { c: 2, st_repetitions: 1 };
        let trials = 150u64;
        let count = |k: usize| {
            let base = PathOuterplanarity::new(&inst, params, Transport::Native);
            let amp = Amplified::new(base, k);
            (0..trials).filter(|&t| amp.run_cheat(0, t).accepted()).count()
        };
        let one = count(1);
        let three = count(3);
        assert!(three <= one, "x3 amplification should not increase survival");
        assert!(three <= trials as usize / 20, "x3 survival too high: {three}/{trials}");
    }
}
