//! One-round Θ(log n) proof labeling schemes (the FFM+21 baselines).
//!
//! These are the non-interactive comparison points of the paper's
//! introduction: a single prover round, deterministic verification, and
//! labels of Θ(log n) bits because they spell out *path positions*. The
//! nesting conditions are the same as in [`crate::nesting`], instantiated
//! with deterministic position-"tags" instead of sampled ones — position
//! pairs are collision-free names, so no randomness is needed.
//!
//! The lower-bound experiment (Theorem 1.8, [`crate::lower_bound`]) reuses
//! these labelings: compressing them below ~log n bits creates label
//! collisions that admit forged hybrid proofs.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::embedded_planarity::build_reduction;
use crate::nesting::{self, NestingLabels};
use pdip_core::{bits_for_max, DipProtocol, Rejections, RunResult, SizeStats, Tag};
use pdip_graph::gen::lr::LrInstance;
use pdip_graph::{Graph, NodeId, RootedForest, RotationSystem};

/// The PLS label set for path-outerplanarity: positions plus the
/// deterministic nesting labels.
#[derive(Debug, Clone)]
pub struct PlsLabels {
    /// Claimed path position of every node.
    pub pos: Vec<usize>,
    /// Nesting labels with position-pair names.
    pub nesting: NestingLabels,
    /// Number of bits per position label.
    pub pos_bits: usize,
}

/// Position-derived deterministic tag.
fn pos_tag(pos: usize, bits: usize) -> Tag {
    Tag { value: pos as u64, bits }
}

/// The honest PLS labeling for a path-outerplanar witness.
pub fn pls_labels(g: &Graph, path: &[NodeId]) -> PlsLabels {
    let n = g.n();
    let pos_bits = bits_for_max(n.max(2) - 1);
    let mut pos = vec![0usize; n];
    for (i, &v) in path.iter().enumerate() {
        pos[v] = i;
    }
    let mut is_path_edge = vec![false; g.m()];
    for w in path.windows(2) {
        // The witness comes from the generator, so consecutive nodes are
        // adjacent; a malformed witness simply yields labels the verifier
        // rejects instead of a prover-side panic.
        if let Some(e) = g.edge_between(w[0], w[1]) {
            is_path_edge[e] = true;
        }
    }
    let tags: Vec<Tag> = (0..n).map(|v| pos_tag(pos[v], pos_bits)).collect();
    let nesting = nesting::sweep_assign(g, &pos, path, &is_path_edge, &tags);
    PlsLabels { pos, nesting, pos_bits }
}

/// The deterministic verifier: path structure from positions plus the
/// nesting conditions.
pub fn pls_check(g: &Graph, labels: &PlsLabels, rej: &mut Rejections) {
    let n = g.n();
    let pos = &labels.pos;
    let tags: Vec<Tag> = (0..n).map(|v| pos_tag(pos[v], labels.pos_bits)).collect();
    // Reconstruct path neighborhoods from positions.
    let mut is_path_edge = vec![false; g.m()];
    for v in 0..n {
        let mut left = None;
        let mut right = None;
        let mut left_count = 0;
        let mut right_count = 0;
        for (u, e) in g.neighbors(v).iter().copied() {
            if pos[u] + 1 == pos[v] {
                left = Some(u);
                left_count += 1;
                is_path_edge[e] = true;
            } else if pos[v] + 1 == pos[u] {
                right = Some(u);
                right_count += 1;
                is_path_edge[e] = true;
            }
            if pos[u] == pos[v] {
                rej.reject_malformed(v, "pls: neighbor shares my position");
                return;
            }
        }
        if pos[v] > 0 && left_count != 1 {
            rej.reject_malformed(v, "pls: interior node without unique predecessor");
            return;
        }
        let _ = (right, right_count);
        let _ = left;
    }
    for v in 0..n {
        let left_nb = g.neighbor_nodes(v).find(|&u| pos[u] + 1 == pos[v]);
        let right_nb = g.neighbor_nodes(v).find(|&u| pos[v] + 1 == pos[u]);
        let is_left = |e: usize| pos[g.edge(e).other(v)] < pos[v];
        nesting::check_node(
            g,
            v,
            left_nb,
            right_nb,
            &is_path_edge,
            &is_left,
            &tags,
            &labels.nesting,
            rej,
        );
    }
}

/// Size statistics of a PLS labeling (one prover round, no coins).
pub fn pls_stats(labels: &PlsLabels) -> SizeStats {
    let tb = labels.pos_bits;
    let bits = tb
        + NestingLabels::node_bits(tb)
        + NestingLabels::arc_bits(tb)
        + NestingLabels::gap_bits(tb);
    SizeStats {
        per_round_max_bits: vec![bits],
        per_round_total_bits: vec![bits * labels.pos.len()],
        coin_bits: 0,
        rounds: 1,
    }
}

/// One-round PLS for path-outerplanarity, bound to an instance (used as
/// the E1 baseline).
#[derive(Debug)]
pub struct PlsPathOuterplanar<'a> {
    /// The bound instance.
    pub graph: &'a Graph,
    /// The witness path, when known.
    pub witness: Option<&'a [NodeId]>,
    /// Ground truth.
    pub is_yes: bool,
}

impl PlsPathOuterplanar<'_> {
    /// One run (deterministic; `seed` ignored).
    pub fn run(&self) -> RunResult {
        let mut rej = Rejections::new();
        let Some(path) = self.witness else {
            rej.reject_malformed(0, "pls: prover has no Hamiltonian path to commit");
            return rej.into_result(SizeStats { rounds: 1, ..Default::default() });
        };
        let labels = pls_labels(self.graph, path);
        let stats = pls_stats(&labels);
        pls_check(self.graph, &labels, &mut rej);
        rej.into_result(stats)
    }
}

impl DipProtocol for PlsPathOuterplanar<'_> {
    fn name(&self) -> String {
        "pls-path-outerplanarity".into()
    }

    fn rounds(&self) -> usize {
        1
    }

    fn instance_size(&self) -> usize {
        self.graph.n()
    }

    fn is_yes_instance(&self) -> bool {
        self.is_yes
    }

    fn run_honest(&self, _seed: u64) -> RunResult {
        self.run()
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["honest-sweep".into()]
    }

    fn run_cheat(&self, _strategy: usize, _seed: u64) -> RunResult {
        // The scheme is deterministic: the best sweep-based cheat is the
        // honest labeling itself.
        self.run()
    }
}

/// One-round PLS for LR-sorting: plain position labels (the §3 warm-up).
#[derive(Debug)]
pub struct PlsLrSorting<'a> {
    /// The bound instance.
    pub inst: &'a LrInstance,
}

impl PlsLrSorting<'_> {
    /// One run (deterministic).
    pub fn run(&self) -> RunResult {
        let g = &self.inst.graph;
        let pos = self.inst.positions();
        let pos_bits = bits_for_max(g.n().max(2) - 1);
        let mut rej = Rejections::new();
        for v in 0..g.n() {
            for e in g.incident_edges(v) {
                let u = g.edge(e).other(v);
                let (t, h) = (self.inst.orientation.tail(g, e), self.inst.orientation.head(g, e));
                if t == v && pos[t] >= pos[h] {
                    rej.reject(v, "pls-lr: outgoing edge to a smaller position");
                }
                let _ = u;
            }
        }
        let stats = SizeStats {
            per_round_max_bits: vec![pos_bits],
            per_round_total_bits: vec![pos_bits * g.n()],
            coin_bits: 0,
            rounds: 1,
        };
        rej.into_result(stats)
    }
}

/// One-round PLS for embedded planarity: the `h(G,T,ρ)` reduction with the
/// PLS path-outerplanarity labels, plus spanning-tree depth labels.
#[derive(Debug)]
pub struct PlsEmbeddedPlanarity<'a> {
    /// The instance graph.
    pub graph: &'a Graph,
    /// Its rotation system.
    pub rho: &'a RotationSystem,
    /// Ground truth.
    pub is_yes: bool,
}

impl PlsEmbeddedPlanarity<'_> {
    /// One run (deterministic).
    pub fn run(&self) -> RunResult {
        let g = self.graph;
        let mut rej = Rejections::new();
        if g.n() <= 2 {
            return rej.into_result(SizeStats { rounds: 1, ..Default::default() });
        }
        let tree = RootedForest::bfs_spanning_tree(g, 0);
        let red = build_reduction(g, self.rho, &tree, 0);
        let labels = pls_labels(&red.h, &red.path);
        pls_check(&red.h, &labels, &mut rej);
        let mut stats = pls_stats(&labels);
        // Tree depth labels (log n) ride along; each original node carries
        // a constant number of h-labels (paper's simulation argument).
        stats.per_round_max_bits[0] = 5 * stats.per_round_max_bits[0] + bits_for_max(g.n());
        rej.into_result(stats)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::outerplanar::random_path_outerplanar;
    use pdip_graph::gen::planar::random_planar;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pls_completeness() {
        let mut rng = SmallRng::seed_from_u64(131);
        for n in [2usize, 5, 30, 200] {
            let gen = random_path_outerplanar(n, 0.7, &mut rng);
            let pls =
                PlsPathOuterplanar { graph: &gen.graph, witness: Some(&gen.path), is_yes: true };
            let res = pls.run();
            assert!(res.accepted(), "n={n}: {:?}", res.rejections.first());
            assert_eq!(res.stats.rounds, 1);
        }
    }

    #[test]
    fn pls_size_is_theta_log_n() {
        let mut rng = SmallRng::seed_from_u64(132);
        let mut sizes = Vec::new();
        for n in [1usize << 6, 1 << 10, 1 << 14] {
            let gen = random_path_outerplanar(n, 0.5, &mut rng);
            let pls =
                PlsPathOuterplanar { graph: &gen.graph, witness: Some(&gen.path), is_yes: true };
            let res = pls.run();
            sizes.push(res.stats.proof_size());
        }
        // Grows linearly in log n: doubling log n roughly doubles the size.
        assert!(sizes[2] > sizes[0] + 20, "{sizes:?}");
    }

    #[test]
    fn pls_rejects_crossings_deterministically() {
        let mut g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
        g.add_edge(0, 3);
        g.add_edge(2, 5);
        let path: Vec<usize> = (0..6).collect();
        let pls = PlsPathOuterplanar { graph: &g, witness: Some(&path), is_yes: false };
        assert!(!pls.run().accepted());
    }

    #[test]
    fn pls_lr_checks_orientation() {
        let mut rng = SmallRng::seed_from_u64(133);
        let inst = pdip_graph::gen::lr::random_lr_yes(30, 12, true, &mut rng);
        assert!(PlsLrSorting { inst: &inst }.run().accepted());
        let Some(no) = pdip_graph::gen::lr::random_lr_no(30, 12, true, 1, &mut rng) else {
            return;
        };
        assert!(!PlsLrSorting { inst: &no }.run().accepted());
    }

    #[test]
    fn pls_embedded_planarity_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(134);
        let gen = random_planar(40, 0.6, &mut rng);
        let pls = PlsEmbeddedPlanarity { graph: &gen.graph, rho: &gen.rho, is_yes: true };
        assert!(pls.run().accepted());
        let bad = pdip_graph::gen::planar::scrambled_embedding(40, &mut rng);
        let pls2 = PlsEmbeddedPlanarity { graph: &bad.graph, rho: &bad.rho, is_yes: false };
        assert!(!pls2.run().accepted());
    }
}
