//! Edge-label simulation in bounded-degeneracy graphs (Lemma 2.4).
//!
//! Several protocols are stated with the prover writing labels on *edges*
//! (both endpoints can read them). The paper simulates this with node
//! labels only: partition the edge set into O(1) rooted forests (planar
//! graphs: ≤ 5 here, outerplanar: ≤ 2 — DESIGN.md §3.2), communicate each
//! forest with the Lemma 2.3 encoding, and write the label of the edge
//! `(v, parent_i(v))` into a designated per-forest slot of `v`'s label.
//! The child endpoint is the edge's *accountable endpoint*; both endpoints
//! locate the slot from the forest codes alone.

use crate::forest_code::{decode_parent, ForestCode, ForestCodeLabel};
use pdip_graph::degeneracy::ForestDecomposition;
use pdip_graph::{EdgeId, Graph, NodeId, RootedForest};

/// A carrier distributing one edge-label of type `T` per edge through
/// node labels.
#[derive(Debug, Clone)]
pub struct EdgeLabelCarrier<T> {
    /// Forest-code labels, one per forest: `codes[f].labels[v]`.
    pub codes: Vec<ForestCode>,
    /// `slots[v][f]`: the label of the edge from `v` to its parent in
    /// forest `f`, if any.
    pub slots: Vec<Vec<Option<T>>>,
}

impl<T: Clone> EdgeLabelCarrier<T> {
    /// Honest prover: computes a degeneracy forest decomposition of `g`
    /// and stores `values[e]` at `e`'s accountable endpoint.
    pub fn assign(g: &Graph, values: &[T]) -> Self {
        assert_eq!(values.len(), g.m());
        let fd = ForestDecomposition::compute(g);
        let k = fd.count();
        let mut codes = Vec::with_capacity(k);
        for f in 0..k {
            let forest = RootedForest::from_parents(g, fd.parents[f].clone());
            codes.push(ForestCode::encode(g, &forest));
        }
        let mut slots: Vec<Vec<Option<T>>> = vec![vec![None; k]; g.n()];
        for e in 0..g.m() {
            let f = fd.forest_of_edge[e];
            let v = fd.accountable_endpoint(g, e);
            debug_assert!(slots[v][f].is_none(), "two edges in one slot");
            slots[v][f] = Some(values[e].clone());
        }
        EdgeLabelCarrier { codes, slots }
    }

    /// Number of forests.
    pub fn forest_count(&self) -> usize {
        self.codes.len()
    }

    /// Locally reads the label of incident edge `e` from node `v`'s
    /// perspective: both endpoints' forest codes determine the accountable
    /// endpoint; the value sits in that endpoint's slot. Returns `None`
    /// if the carrier is malformed for this edge.
    pub fn read(&self, g: &Graph, v: NodeId, e: EdgeId) -> Option<&T> {
        let u = g.edge(e).other(v);
        for f in 0..self.forest_count() {
            let labels: &[ForestCodeLabel] = &self.codes[f].labels;
            if decode_parent(g, labels, v) == Some(u) {
                return self.slots[v][f].as_ref();
            }
            if decode_parent(g, labels, u) == Some(v) {
                return self.slots[u][f].as_ref();
            }
        }
        None
    }

    /// Label width at node `v` in bits, given the per-value width.
    pub fn node_bits(&self, v: NodeId, value_bits: impl Fn(&T) -> usize) -> usize {
        let code_bits: usize = self.codes.iter().map(|c| c.label_bits()).sum();
        let slot_bits: usize =
            self.slots[v].iter().map(|s| 1 + s.as_ref().map_or(0, &value_bits)).sum();
        code_bits + slot_bits
    }

    /// The maximum node-label width in bits.
    pub fn max_bits(&self, g: &Graph, value_bits: impl Fn(&T) -> usize) -> usize {
        (0..g.n()).map(|v| self.node_bits(v, &value_bits)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::outerplanar::random_path_outerplanar;
    use pdip_graph::gen::planar::random_planar;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_edge_readable_from_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(61);
        for n in [4usize, 10, 60] {
            let inst = random_planar(n, 0.6, &mut rng);
            let g = &inst.graph;
            let values: Vec<u64> = (0..g.m() as u64).collect();
            let carrier = EdgeLabelCarrier::assign(g, &values);
            for e in 0..g.m() {
                let edge = g.edge(e);
                assert_eq!(carrier.read(g, edge.u, e), Some(&(e as u64)), "u side of {e}");
                assert_eq!(carrier.read(g, edge.v, e), Some(&(e as u64)), "v side of {e}");
            }
        }
    }

    #[test]
    fn outerplanar_uses_two_forests() {
        let mut rng = SmallRng::seed_from_u64(62);
        let inst = random_path_outerplanar(100, 0.8, &mut rng);
        let values = vec![(); inst.graph.m()];
        let carrier = EdgeLabelCarrier::assign(&inst.graph, &values);
        assert!(carrier.forest_count() <= 2, "forests = {}", carrier.forest_count());
    }

    #[test]
    fn planar_label_overhead_is_constant_plus_values() {
        let mut rng = SmallRng::seed_from_u64(63);
        let inst = random_planar(200, 0.9, &mut rng);
        let values: Vec<u8> = vec![0; inst.graph.m()];
        let carrier = EdgeLabelCarrier::assign(&inst.graph, &values);
        assert!(carrier.forest_count() <= 5);
        // Each node carries <= 5 forest codes (<= 8 bits each) + <= 5 slots
        // of (1 + 4) bits.
        let max = carrier.max_bits(&inst.graph, |_| 4);
        assert!(max <= 5 * 8 + 5 * 5, "max = {max}");
    }

    #[test]
    fn read_fails_gracefully_on_tampered_codes() {
        let mut rng = SmallRng::seed_from_u64(64);
        let inst = random_planar(20, 0.5, &mut rng);
        let g = &inst.graph;
        let values: Vec<u32> = (0..g.m() as u32).collect();
        let mut carrier = EdgeLabelCarrier::assign(g, &values);
        // Make every node claim to be a root in every forest: no edge is
        // decodable any more, but nothing panics.
        for code in &mut carrier.codes {
            for l in &mut code.labels {
                l.root = true;
            }
        }
        for e in 0..g.m() {
            let edge = g.edge(e);
            assert_eq!(carrier.read(g, edge.u, e), None);
        }
    }
}
