//! Replay verification of stored transcripts.
//!
//! All protocols in this crate are pure functions of `(instance, prover,
//! seed)`: the verifier's public coins come from
//! `SmallRng::seed_from_u64(seed)` and the prover rounds are deterministic
//! given the coins. A stored transcript (see [`pdip_core::capture`]) is
//! therefore *checkable*: re-run the bound protocol with the stored seed
//! under a capture scope and byte-compare the emitted rounds against the
//! stored ones. A mismatch means the stored transcript was not produced
//! by the claimed `(instance, prover, seed)` — a deterministic reject,
//! independent of the verdict. If the rounds match, the replayed verdict
//! *is* the stored run's verdict.
//!
//! The LR-sorting core additionally supports true stored-label
//! verification with no prover in the loop
//! ([`crate::lr_sorting::LrSorting::verify_transcript`]); the family
//! protocols compose nested sub-protocols whose labels live in their
//! captured rounds, so replay-compare is the uniform entry point here.

use pdip_core::{capture, CapturedTranscript, DipProtocol, RunResult};

/// The outcome of replaying a stored transcript.
#[derive(Debug, Clone)]
pub enum ReplayOutcome {
    /// The re-run emitted different rounds than the stored transcript:
    /// the transcript does not belong to the claimed
    /// `(instance, prover, seed)`.
    Mismatch {
        /// Human-readable description of the first divergence.
        detail: String,
    },
    /// The rounds matched byte-for-byte; this is the replayed verdict.
    Verdict(RunResult),
}

/// Runs `p` with the given prover (honest for `None`, cheat strategy `k`
/// for `Some(k)`) under a capture scope and returns the result together
/// with the captured rounds.
pub fn capture_run(
    p: &dyn DipProtocol,
    cheat: Option<usize>,
    seed: u64,
) -> (RunResult, CapturedTranscript) {
    capture::capture(|| match cheat {
        None => p.run_honest(seed),
        Some(k) => p.run_cheat(k, seed),
    })
}

/// Byte-compares two captured transcripts; `None` means identical.
pub fn diff_transcripts(expected: &CapturedTranscript, got: &CapturedTranscript) -> Option<String> {
    if expected.rounds.len() != got.rounds.len() {
        return Some(format!(
            "round count differs: stored {} vs replayed {}",
            expected.rounds.len(),
            got.rounds.len()
        ));
    }
    for (i, (e, g)) in expected.rounds.iter().zip(got.rounds.iter()).enumerate() {
        if e.stage != g.stage {
            return Some(format!(
                "round {i}: stage differs: stored {:?} vs replayed {:?}",
                e.stage, g.stage
            ));
        }
        if e.payload != g.payload {
            let at = e
                .payload
                .iter()
                .zip(g.payload.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| e.payload.len().min(g.payload.len()));
            return Some(format!(
                "round {i} ({}): payload differs at byte {at} (stored {} bytes, replayed {})",
                e.stage,
                e.payload.len(),
                g.payload.len()
            ));
        }
    }
    None
}

/// Replays the stored transcript: re-runs `p` with the stored
/// `(cheat, seed)` under capture and byte-compares the emitted rounds
/// against `expected`. Returns the replayed verdict on a match.
pub fn replay_verify(
    p: &dyn DipProtocol,
    cheat: Option<usize>,
    seed: u64,
    expected: &CapturedTranscript,
) -> ReplayOutcome {
    let (res, got) = capture_run(p, cheat, seed);
    match diff_transcripts(expected, &got) {
        Some(detail) => ReplayOutcome::Mismatch { detail },
        None => ReplayOutcome::Verdict(res),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr_sorting::Transport;
    use crate::path_outerplanar::{PathOuterplanarity, PopInstance, PopParams};
    use pdip_graph::Graph;

    fn pop_instance(n: usize) -> PopInstance {
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        PopInstance { witness: Some((0..n).collect()), is_yes: true, graph: g }
    }

    #[test]
    fn honest_replay_matches_itself() {
        let inst = pop_instance(24);
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Simulated);
        let (res, cap) = capture_run(&p, None, 7);
        assert!(res.accepted());
        assert!(!cap.rounds.is_empty(), "capture must observe rounds");
        match replay_verify(&p, None, 7, &cap) {
            ReplayOutcome::Verdict(r) => assert!(r.accepted()),
            ReplayOutcome::Mismatch { detail } => panic!("unexpected mismatch: {detail}"),
        }
    }

    #[test]
    fn wrong_seed_is_a_mismatch() {
        let inst = pop_instance(24);
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Simulated);
        let (_, cap) = capture_run(&p, None, 7);
        match replay_verify(&p, None, 8, &cap) {
            ReplayOutcome::Mismatch { .. } => {}
            ReplayOutcome::Verdict(_) => panic!("different seed must not replay-match"),
        }
    }

    #[test]
    fn tampered_round_is_a_mismatch() {
        let inst = pop_instance(24);
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Simulated);
        let (_, mut cap) = capture_run(&p, None, 7);
        let last = cap.rounds.len() - 1;
        if let Some(b) = cap.rounds[last].payload.first_mut() {
            *b ^= 0x40;
        }
        match replay_verify(&p, None, 7, &cap) {
            ReplayOutcome::Mismatch { .. } => {}
            ReplayOutcome::Verdict(_) => panic!("tampered payload must not replay-match"),
        }
    }
}
