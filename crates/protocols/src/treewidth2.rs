//! The treewidth ≤ 2 protocol (Theorem 1.7, §8 of the paper).
//!
//! By Lemma 8.2 a graph has treewidth at most 2 iff every biconnected
//! component is series-parallel. The prover commits the rooted block–cut
//! tree exactly as in the outerplanarity protocol (§6) — spanning-tree
//! certification of the union structure plus block-membership tags — and
//! runs the series-parallel protocol (Theorem 1.6) inside every block in
//! parallel, with the separating nodes' labels deferred to their in-block
//! neighbors.

use crate::lr_sorting::Transport;
use crate::path_outerplanar::PopParams;
use crate::series_parallel::{SeriesParallel, SpaCheat, SpaInstance};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{trace_stats, DipProtocol, Rejections, RunResult, SizeStats, Tag};
use pdip_graph::{BlockCutTree, Graph, RootedForest};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A treewidth ≤ 2 instance.
#[derive(Debug, Clone)]
pub struct Tw2Instance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// Ground truth.
    pub is_yes: bool,
}

/// Cheating strategies: which series-parallel cheat runs in the bad block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tw2Cheat {
    /// Hide the violating edges as single-edge ears inside the bad block.
    BlockHideExtraEdges,
    /// Commit a fake forest inside the bad block.
    BlockFakeForest,
}

/// All cheats in interface order.
pub const TW2_CHEATS: [Tw2Cheat; 2] = [Tw2Cheat::BlockHideExtraEdges, Tw2Cheat::BlockFakeForest];

/// The treewidth ≤ 2 DIP bound to an instance.
#[derive(Debug)]
pub struct Treewidth2<'a> {
    inst: &'a Tw2Instance,
    params: PopParams,
    transport: Transport,
    tag_bits: usize,
}

impl<'a> Treewidth2<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a Tw2Instance, params: PopParams, transport: Transport) -> Self {
        let n = inst.graph.n().max(4);
        let loglog = ((n as f64).log2()).log2().ceil() as usize;
        let tag_bits = ((params.c as usize) * loglog + 4).min(60);
        Treewidth2 { inst, params, transport, tag_bits }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// One full run.
    pub fn run(&self, cheat: Option<Tw2Cheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`Treewidth2::run`] with an instrumentation [`Recorder`]: stage
    /// spans, Lemma 2.5 primitive spans, the Theorem 1.6 sub-run traces
    /// per block, and per-round bit counters ([`trace_stats`]). With a
    /// disabled recorder this is the same run.
    pub fn run_with(&self, cheat: Option<Tw2Cheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "treewidth-2", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<Tw2Cheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };
        if n <= 2 || g.m() == 0 {
            return rej.into_result(stats);
        }

        // ---- Block-cut commitment: spanning tree + block tags ----
        let stage1 = span(rec, 0, SpanId::at("treewidth-2/stage", 1));
        let bct = BlockCutTree::rooted(g);
        let k = bct.block_count();
        let tags: Vec<Tag> = (0..k).map(|_| Tag::random(self.tag_bits, &mut rng)).collect();
        // Home block (where the node is not separating).
        let mut home = vec![usize::MAX; n];
        for c in 0..k {
            for &v in &bct.bcc.component_nodes(g, c) {
                if bct.separating_node[c] != Some(v) {
                    home[v] = c;
                }
            }
        }
        // Observe-only capture of the block-tag commitment for replay.
        pdip_core::capture::emit("tw2/block-tags", |s| {
            s.put_usize(k);
            for t in &tags {
                s.put_usize(t.bits);
                s.put_u64(t.value);
            }
            for &h in &home {
                s.put_u64(h as u64);
            }
        });
        // Block-membership tag checks: every edge lies in one block; its
        // endpoints' tags agree unless one endpoint is the block's
        // separating cut node.
        for v in 0..n {
            for e in g.incident_edges(v) {
                let u = g.edge(e).other(v);
                let block_e = bct.bcc.component_of_edge[e];
                let ok = home[v] == block_e || bct.separating_node[block_e] == Some(v);
                let ok_u = home[u] == block_e || bct.separating_node[block_e] == Some(u);
                rej.check(v, ok && ok_u, || "tw2: edge escapes its block".into());
                if home[v] == block_e && home[u] == block_e {
                    rej.check(v, tags[home[v]] == tags[home[u]], || {
                        "tw2: block tags differ within block".into()
                    });
                }
            }
        }
        // Spanning-tree certification of the union structure.
        let forest = RootedForest::bfs_spanning_tree(g, 0);
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        let st_coins = st.draw_coins(n, &mut rng);
        let st_msgs = st.honest_response_traced(&forest, &st_coins, rec);
        for v in 0..n {
            st.check(
                g,
                v,
                forest.parent(v),
                forest.parent(v).is_none(),
                &st_coins,
                &st_msgs,
                &mut rej,
            );
        }

        drop(stage1);

        // ---- Per-block series-parallel runs ----
        let _stage2 = span(rec, 0, SpanId::at("treewidth-2/stage", 2));
        let mut per_round_max = [0usize; 3];
        for c in 0..k {
            let nodes = bct.bcc.component_nodes(g, c);
            if nodes.len() <= 2 {
                continue; // single edges are series-parallel
            }
            let mut remap = std::collections::HashMap::new();
            for (i, &v) in nodes.iter().enumerate() {
                remap.insert(v, i);
            }
            let mut h = Graph::new(nodes.len());
            for &e in &bct.bcc.components[c] {
                let edge = g.edge(e);
                h.add_edge(remap[&edge.u], remap[&edge.v]);
            }
            let is_yes = pdip_graph::is_series_parallel(&h);
            let sub_inst = SpaInstance { graph: h, is_yes };
            let sub = SeriesParallel::new(&sub_inst, self.params, self.transport);
            let sub_cheat = if is_yes {
                None
            } else {
                Some(match cheat {
                    Some(Tw2Cheat::BlockFakeForest) => SpaCheat::FakeForest,
                    _ => SpaCheat::HideExtraEdges,
                })
            };
            let res = sub.run_with(sub_cheat, rng.gen(), rec);
            for (i, b) in res.stats.per_round_max_bits.iter().enumerate() {
                per_round_max[i] = per_round_max[i].max(*b);
            }
            for ((lv, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
                rej.reject_as(
                    nodes.get(lv).copied().unwrap_or(nodes[0]),
                    kind,
                    format!("tw2/block {c}: {reason}"),
                );
            }
        }

        let own = SizeStats {
            per_round_max_bits: vec![
                2 + 2 * (1 + self.tag_bits) + per_round_max[0],
                st.msg_bits() + per_round_max[1],
                per_round_max[2],
            ],
            per_round_total_bits: vec![],
            coin_bits: n * (st.coin_bits() + self.tag_bits),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        rej.into_result(stats)
    }
}

impl DipProtocol for Treewidth2<'_> {
    fn name(&self) -> String {
        "treewidth-2".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["block-hide-extra-edges".into(), "block-fake-forest".into()]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(TW2_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(TW2_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::tw2_violator;
    use pdip_graph::gen::sp::random_treewidth2;

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(121);
        for (blocks, bs) in [(1usize, 8usize), (4, 5), (7, 3)] {
            for _ in 0..3 {
                let gen = random_treewidth2(blocks, bs, &mut rng);
                let inst = Tw2Instance { graph: gen.graph, is_yes: true };
                let p = Treewidth2::new(&inst, PopParams::default(), Transport::Native);
                let res = p.run_honest(rng.gen());
                assert!(res.accepted(), "blocks={blocks} bs={bs}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn violators_rejected() {
        let mut rng = SmallRng::seed_from_u64(122);
        for cheat in TW2_CHEATS {
            let mut accepted = 0;
            for seed in 0..30 {
                let g = tw2_violator(3, 1, &mut rng);
                let inst = Tw2Instance { graph: g, is_yes: false };
                let p = Treewidth2::new(&inst, PopParams::default(), Transport::Native);
                if p.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 3, "{cheat:?} accepted {accepted}/30");
        }
    }
}
