//! The one-pass `MultisetEq::honest_response` must assign every node the
//! same subtree evaluations as the definition: for each node `v`,
//! `a1(v) = φ_{∪_{u ∈ subtree(v)} S1(u)}(z)` recomputed from scratch with
//! the naive (division-based) evaluator. Checked on paths, stars and
//! random parent arrays, and on a two-challenge block segment shaped like
//! the `lr_sorting` round-3 call site.

use pdip_field::{multiset_poly_eval_naive, smallest_prime_above, Fp};
use pdip_protocols::multiset_eq::MultisetEq;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Brute-force reference: gathers the subtree union of each node by
/// walking every ancestor chain, then evaluates with the naive path.
fn brute_force(f: &Fp, parent: &[Option<usize>], sets: &[Vec<u64>], z: u64) -> Vec<u64> {
    let k = parent.len();
    (0..k)
        .map(|v| {
            // subtree(v) = every node whose ancestor chain passes through v.
            let mut union: Vec<u64> = Vec::new();
            for (u, set) in sets.iter().enumerate() {
                let mut cur = Some(u);
                while let Some(w) = cur {
                    if w == v {
                        union.extend_from_slice(set);
                        break;
                    }
                    cur = parent[w];
                }
            }
            multiset_poly_eval_naive(f, union, z)
        })
        .collect()
}

fn random_sets(rng: &mut SmallRng, k: usize, p: u64) -> Vec<Vec<u64>> {
    (0..k)
        .map(|_| {
            let len = rng.gen_range(0..6);
            (0..len).map(|_| rng.gen_range(0..p)).collect()
        })
        .collect()
}

/// Runs both computations on one topology and compares every node.
fn assert_equivalent(f: Fp, parent: &[Option<usize>], seed: u64) {
    let k = parent.len();
    let ms = MultisetEq::new(f);
    let mut rng = SmallRng::seed_from_u64(seed);
    let s1 = random_sets(&mut rng, k, f.modulus());
    let s2 = random_sets(&mut rng, k, f.modulus());
    let z = rng.gen_range(0..f.modulus());
    let msgs = ms.honest_response(parent, |i| s1[i].as_slice(), |i| s2[i].as_slice(), z);
    let want1 = brute_force(&f, parent, &s1, z);
    let want2 = brute_force(&f, parent, &s2, z);
    for v in 0..k {
        assert_eq!(msgs[v].z, z);
        assert_eq!(msgs[v].a1, want1[v], "a1 mismatch at node {v} (seed {seed})");
        assert_eq!(msgs[v].a2, want2[v], "a2 mismatch at node {v} (seed {seed})");
    }
}

#[test]
fn one_pass_matches_brute_force_on_paths() {
    let f = Fp::new(smallest_prime_above(1 << 16));
    for k in [1usize, 2, 3, 17, 64] {
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        for seed in 0..10 {
            assert_equivalent(f, &parent, seed * 31 + k as u64);
        }
    }
}

#[test]
fn one_pass_matches_brute_force_on_stars() {
    let f = Fp::new(smallest_prime_above(1 << 20));
    for k in [2usize, 5, 33] {
        // Root last, so the fold order differs from index order.
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == k - 1 { None } else { Some(k - 1) }).collect();
        for seed in 0..10 {
            assert_equivalent(f, &parent, seed * 17 + k as u64);
        }
    }
}

#[test]
fn one_pass_matches_brute_force_on_random_trees() {
    let f = Fp::new(smallest_prime_above(1 << 16));
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(9000 + seed);
        let k = rng.gen_range(1..40usize);
        // parent[i] < i guarantees acyclicity; node 0 is the root. Then
        // scramble the labels so the root is not always index 0.
        let parent_mono: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(rng.gen_range(0..i)) }).collect();
        let mut perm: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut parent = vec![None; k];
        for i in 0..k {
            parent[perm[i]] = parent_mono[i].map(|p| perm[p]);
        }
        assert_equivalent(f, &parent, seed);
    }
}

/// Mirrors the `lr_sorting` round-3 shape: one block path, two
/// independent challenges `z1`, `z0`, C-side vs D-side multisets. The
/// two aggregations must each match their own brute-force reference.
#[test]
fn two_challenge_block_segment_matches_reference() {
    let f = Fp::new(smallest_prime_above(1 << 20));
    let ms = MultisetEq::new(f);
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(500 + seed);
        let k = rng.gen_range(1..24usize);
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        let c1 = random_sets(&mut rng, k, f.modulus());
        let d1 = random_sets(&mut rng, k, f.modulus());
        let c0 = random_sets(&mut rng, k, f.modulus());
        let d0 = random_sets(&mut rng, k, f.modulus());
        let z1 = rng.gen_range(0..f.modulus());
        let z0 = rng.gen_range(0..f.modulus());
        let msgs1 = ms.honest_response(&parent, |i| c1[i].as_slice(), |i| d1[i].as_slice(), z1);
        let msgs0 = ms.honest_response(&parent, |i| c0[i].as_slice(), |i| d0[i].as_slice(), z0);
        let wc1 = brute_force(&f, &parent, &c1, z1);
        let wd1 = brute_force(&f, &parent, &d1, z1);
        let wc0 = brute_force(&f, &parent, &c0, z0);
        let wd0 = brute_force(&f, &parent, &d0, z0);
        for v in 0..k {
            assert_eq!((msgs1[v].a1, msgs1[v].a2), (wc1[v], wd1[v]), "z1 node {v} seed {seed}");
            assert_eq!((msgs0[v].a1, msgs0[v].a2), (wc0[v], wd0[v]), "z0 node {v} seed {seed}");
        }
    }
}

#[test]
#[should_panic(expected = "cyclic parents")]
fn cyclic_parents_still_panic() {
    let f = Fp::new(smallest_prime_above(1 << 16));
    let ms = MultisetEq::new(f);
    // 0 -> 1 -> 2 -> 0 cycle plus a root at 3.
    let parent = vec![Some(1), Some(2), Some(0), None];
    let empty: [u64; 0] = [];
    ms.honest_response(&parent, |_| &empty[..], |_| &empty[..], 7);
}
