//! Properties of the sharded (block-cut-tree) verifier on small graphs:
//!
//! 1. **Ground truth factorizes.** On arbitrary connected graphs of at
//!    most 12 nodes, "every block is planar" equals the monolithic LR
//!    planarity verdict — the theorem the shard plan rests on, checked
//!    deterministically.
//! 2. **Completeness agrees.** On witness-carrying planar instances the
//!    honest monolithic run and the honest sharded run both accept, and
//!    the sharded result is byte-identical at shard-group counts
//!    {1, 2, 4} — for the honest prover *and every cheat prover*.
//! 3. **Soundness agrees.** On nonplanar instances (K5 / K3,3 core plus a
//!    pendant path, so the decomposition is nontrivial) both paths reject
//!    within a small seed budget (per-seed detection is probabilistic by
//!    design), and the sharded result stays group-count-invariant at
//!    every seed.
//!
//! Verdict-per-seed equality between the monolithic and sharded paths is
//! deliberately *not* asserted for cheat provers: the two paths run
//! different protocol compositions over different coin streams, so only
//! ground-truth agreement (1) and within-path byte-identity (2, 3) are
//! deterministic facts.

use pdip_core::RunResult;
use pdip_graph::gen::planar::random_planar;
use pdip_graph::Graph;
use pdip_protocols::lr_sorting::Transport;
use pdip_protocols::path_outerplanar::PopParams;
use pdip_protocols::planarity::{PlInstance, Planarity, PL_CHEATS};
use pdip_protocols::sharded::ShardPlan;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const GROUPS: [usize; 3] = [1, 2, 4];

fn assert_same_result(a: &RunResult, b: &RunResult, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.verdict, b.verdict, "{}: verdict", what);
    prop_assert_eq!(&a.rejections, &b.rejections, "{}: rejections", what);
    prop_assert_eq!(&a.kinds, &b.kinds, "{}: kinds", what);
    prop_assert_eq!(&a.stats, &b.stats, "{}: stats", what);
    Ok(())
}

/// A connected graph on `n <= 12` nodes: a random tree (parent codes)
/// plus extra edges (pair codes), dedup'd, no self-loops.
fn small_connected(n: usize, parents: &[u8], extras: &[u8]) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v, parents[v - 1] as usize % v);
    }
    for &code in extras {
        let a = code as usize % n;
        let b = (code as usize / 12) % n;
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b);
        }
    }
    g
}

/// A nonplanar graph on `n <= 12` nodes: a K5 or K3,3 core plus a pendant
/// path, so the block-cut tree has a bad block *and* trivial bridge
/// blocks.
fn nonplanar_with_tail(use_k5: bool, n: usize) -> Graph {
    let core = if use_k5 { 5 } else { 6 };
    let n = n.max(core + 1);
    let mut g = Graph::new(n);
    if use_k5 {
        for u in 0..5 {
            for v in u + 1..5 {
                g.add_edge(u, v);
            }
        }
    } else {
        for u in 0..3 {
            for v in 3..6 {
                g.add_edge(u, v);
            }
        }
    }
    for v in core..n {
        g.add_edge(v - if v == core { core } else { 1 }, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: planarity of G equals planarity of every block.
    #[test]
    fn block_planarity_factorizes(
        n in 2usize..=12,
        parents in prop::collection::vec(0u8..12, 11..12),
        extras in prop::collection::vec(0u8..144, 0..10),
    ) {
        let g = small_connected(n, &parents, &extras);
        let monolithic = pdip_graph::is_planar(&g);
        let inst = PlInstance { graph: g, witness_rho: None, is_yes: monolithic };
        let plan = ShardPlan::decompose(&inst);
        prop_assert_eq!(plan.all_blocks_planar(), monolithic);
    }

    /// Property 2: honest completeness on both paths, and sharded
    /// byte-identity at group counts {1,2,4} for honest and every cheat.
    #[test]
    fn planar_instances_agree_across_paths_and_groupings(
        n in 4usize..=12,
        keep in 0.3f64..0.9,
        gen_seed in 0u64..1 << 48,
        run_seed in 0u64..1 << 48,
    ) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let gen = random_planar(n, keep, &mut rng);
        let inst = PlInstance { graph: gen.graph, witness_rho: Some(gen.rho), is_yes: true };
        let params = PopParams::default();

        let mono = Planarity::new(&inst, params, Transport::Native).run(None, run_seed);
        prop_assert!(mono.accepted(), "monolithic completeness: {:?}", mono.rejections.first());

        let plan = ShardPlan::decompose(&inst);
        prop_assert!(plan.all_blocks_planar());
        let base = plan.run_grouped(1, 1, params, Transport::Native, None, run_seed);
        prop_assert!(base.accepted(), "sharded completeness: {:?}", base.rejections.first());
        for groups in GROUPS {
            let r = plan.run_grouped(groups, 2, params, Transport::Native, None, run_seed);
            assert_same_result(&r, &base, &format!("honest, groups={groups}"))?;
        }
        for cheat in PL_CHEATS {
            let base = plan.run_grouped(1, 1, params, Transport::Native, Some(cheat), run_seed);
            for groups in GROUPS {
                let r =
                    plan.run_grouped(groups, 2, params, Transport::Native, Some(cheat), run_seed);
                assert_same_result(&r, &base, &format!("{cheat:?}, groups={groups}"))?;
            }
        }
    }

    /// Property 3: both paths reject nonplanar instances within the seed
    /// budget, and the sharded path stays group-invariant per seed.
    #[test]
    fn nonplanar_instances_rejected_by_both_paths(
        k5 in 0u8..2,
        n in 6usize..=12,
        seed0 in 0u64..1 << 48,
    ) {
        let g = nonplanar_with_tail(k5 == 0, n);
        prop_assert!(!pdip_graph::is_planar(&g));
        let inst = PlInstance { graph: g, witness_rho: None, is_yes: false };
        let params = PopParams::default();
        let plan = ShardPlan::decompose(&inst);
        prop_assert!(!plan.all_blocks_planar());

        let mut mono_rejected = false;
        let mut shard_rejected = false;
        for k in 0..8u64 {
            let seed = seed0.wrapping_add(k);
            if !mono_rejected {
                mono_rejected =
                    !Planarity::new(&inst, params, Transport::Native).run(None, seed).accepted();
            }
            let base = plan.run_grouped(1, 1, params, Transport::Native, None, seed);
            for groups in GROUPS {
                let r = plan.run_grouped(groups, 2, params, Transport::Native, None, seed);
                assert_same_result(&r, &base, &format!("nonplanar seed {seed}, groups={groups}"))?;
            }
            shard_rejected |= !base.accepted();
            if mono_rejected && shard_rejected {
                break;
            }
        }
        prop_assert!(mono_rejected, "monolithic never rejected in 8 seeds");
        prop_assert!(shard_rejected, "sharded never rejected in 8 seeds");
    }
}
