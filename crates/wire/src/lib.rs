//! `pdip-wire`: the versioned binary wire format for DIP runs.
//!
//! A `.transcript` blob serializes one full protocol run — the bound
//! instance, the prover identity (honest or a named cheat strategy), the
//! run seed, the captured per-node label rounds, and the stored outcome —
//! in a dependency-free little-endian container with a checksum trailer
//! (see [`format`] for the framing and DESIGN.md §5 for the field-by-field
//! layout and compatibility policy).
//!
//! Decoding is hardened: every length field is checked against a hard cap
//! and the bytes actually present before anything is allocated, and all
//! indices (edge endpoints, witness nodes, rotation orders) are validated
//! before the protocol layer may index with them. Malformed input yields a
//! structured [`WireError`], never a panic.
//!
//! Verification is *replay*: protocols are pure functions of
//! `(instance, prover, seed)`, so [`Transcript::verify`] re-runs the
//! protocol under a capture scope and byte-compares the emitted rounds
//! against the stored ones before trusting the verdict.

#![warn(missing_docs)]

pub mod codec;
pub mod format;
pub mod frame;
pub mod transcript;

pub use codec::{decode_rho, encode_rho, is_connected, Decode, Encode};
pub use format::{fnv1a64, Reader, WireError, Writer, FORMAT_VERSION, MAGIC};
pub use frame::{
    fault, fault_class, read_frame, read_frame_deadline, read_frame_limited, write_frame,
    DEFAULT_MAX_FRAME_BYTES,
};
pub use transcript::{family_name, Transcript, VerifyOutcome, WireInstance};
