//! [`Encode`]/[`Decode`] implementations for the graph substrate, the
//! `pdip-core` transcript types, and the six family instance types.
//!
//! Decoding is *validating*: graphs check edge endpoints, witnesses check
//! range and uniqueness, rotation systems check that every node's order
//! is a permutation of its incident edges — a decoded value is safe to
//! hand to the protocol layer, whose code may index with it.

use crate::format::{Reader, WireError, Writer, MAX_EDGES, MAX_NODES, MAX_ROUNDS};
use pdip_core::{CapturedRound, CapturedTranscript, SizeStats};
use pdip_graph::{EdgeId, Graph, NodeId, RotationSystem};

/// Serializes a value into a [`Writer`].
pub trait Encode {
    /// Appends the wire form of `self`.
    fn encode(&self, w: &mut Writer);
}

/// Parses a value out of a [`Reader`], validating as it goes.
pub trait Decode: Sized {
    /// Reads and validates one value.
    fn decode(r: &mut Reader) -> Result<Self, WireError>;
}

impl Encode for Graph {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n());
        w.put_usize(self.m());
        for e in self.edges() {
            w.put_u32(e.u as u32);
            w.put_u32(e.v as u32);
        }
    }
}

impl Decode for Graph {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let n = r.usize_capped("node count", MAX_NODES)?;
        if n == 0 {
            return Err(WireError::Invalid("empty graph".into()));
        }
        let m = r.count("edge count", MAX_EDGES, 8)?;
        let mut g = Graph::new(n);
        for _ in 0..m {
            let u = r.u32()? as usize;
            let v = r.u32()? as usize;
            if u >= n || v >= n {
                return Err(WireError::Invalid(format!("edge ({u}, {v}) out of range for n={n}")));
            }
            g.add_edge(u, v);
        }
        Ok(g)
    }
}

/// Whether `g` is connected (the standing assumption of every family
/// protocol; a decoded instance must not violate it).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.n();
    if n == 0 {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(v) = stack.pop() {
        for u in g.neighbor_nodes(v) {
            if !seen[u] {
                seen[u] = true;
                visited += 1;
                stack.push(u);
            }
        }
    }
    visited == n
}

/// Decodes a graph and checks connectivity.
pub fn decode_connected_graph(r: &mut Reader) -> Result<Graph, WireError> {
    let g = Graph::decode(r)?;
    if !is_connected(&g) {
        return Err(WireError::Invalid("graph is not connected".into()));
    }
    Ok(g)
}

/// Encodes an optional Hamiltonian-path witness.
pub fn encode_witness(w: &mut Writer, witness: &Option<Vec<NodeId>>) {
    match witness {
        None => w.put_bool(false),
        Some(path) => {
            w.put_bool(true);
            w.put_usize(path.len());
            for &v in path {
                w.put_u32(v as u32);
            }
        }
    }
}

/// Decodes an optional Hamiltonian-path witness for a graph on `n`
/// nodes: each entry in range, no node repeated.
pub fn decode_witness(r: &mut Reader, n: usize) -> Result<Option<Vec<NodeId>>, WireError> {
    if !r.bool()? {
        return Ok(None);
    }
    let len = r.count("witness length", MAX_NODES, 4)?;
    let mut seen = vec![false; n];
    let mut path = Vec::with_capacity(len);
    for _ in 0..len {
        let v = r.u32()? as usize;
        if v >= n {
            return Err(WireError::Invalid(format!("witness node {v} out of range for n={n}")));
        }
        if seen[v] {
            return Err(WireError::Invalid(format!("witness repeats node {v}")));
        }
        seen[v] = true;
        path.push(v);
    }
    Ok(Some(path))
}

/// Encodes a rotation system of `g`.
pub fn encode_rho(w: &mut Writer, g: &Graph, rho: &RotationSystem) {
    for v in 0..g.n() {
        let order = rho.order_at(v);
        w.put_usize(order.len());
        for &e in order {
            w.put_u32(e as u32);
        }
    }
}

/// Decodes a rotation system for `g`, checking every node's order is a
/// permutation of its incident edges (the invariant
/// [`RotationSystem::from_orders`] asserts).
pub fn decode_rho(r: &mut Reader, g: &Graph) -> Result<RotationSystem, WireError> {
    let n = g.n();
    let mut order: Vec<Vec<EdgeId>> = Vec::with_capacity(n);
    for v in 0..n {
        let len = r.count("rotation order", MAX_EDGES, 4)?;
        let mut at_v = Vec::with_capacity(len);
        for _ in 0..len {
            at_v.push(r.u32()? as usize);
        }
        let mut want: Vec<EdgeId> = g.incident_edges(v).collect();
        let mut got = at_v.clone();
        want.sort_unstable();
        got.sort_unstable();
        if want != got {
            return Err(WireError::Invalid(format!(
                "rotation order at node {v} is not a permutation of its incident edges"
            )));
        }
        order.push(at_v);
    }
    Ok(RotationSystem::from_orders(g, order))
}

impl Encode for CapturedRound {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.stage);
        w.put_u32(self.payload.len() as u32);
        w.put_bytes(&self.payload);
    }
}

impl Decode for CapturedRound {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let stage = r.str()?;
        let len = r.u32()? as usize;
        if len > r.remaining() {
            return Err(WireError::TooLarge { what: "round payload", len: len as u64 });
        }
        let payload = r.take(len)?.to_vec();
        Ok(CapturedRound { stage, payload })
    }
}

impl Encode for CapturedTranscript {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.rounds.len());
        for round in &self.rounds {
            round.encode(w);
        }
    }
}

impl Decode for CapturedTranscript {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let n = r.count("round count", MAX_ROUNDS, 8)?;
        let mut rounds = Vec::with_capacity(n);
        for _ in 0..n {
            rounds.push(CapturedRound::decode(r)?);
        }
        Ok(CapturedTranscript { rounds })
    }
}

impl Encode for SizeStats {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.per_round_max_bits.len());
        for &b in &self.per_round_max_bits {
            w.put_usize(b);
        }
        w.put_usize(self.per_round_total_bits.len());
        for &b in &self.per_round_total_bits {
            w.put_usize(b);
        }
        w.put_usize(self.coin_bits);
        w.put_usize(self.rounds);
    }
}

impl Decode for SizeStats {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let read_vec = |r: &mut Reader| -> Result<Vec<usize>, WireError> {
            let n = r.count("stats vector", MAX_ROUNDS, 8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.usize_capped("stats entry", usize::MAX >> 1)?);
            }
            Ok(v)
        };
        let per_round_max_bits = read_vec(r)?;
        let per_round_total_bits = read_vec(r)?;
        let coin_bits = r.usize_capped("coin bits", usize::MAX >> 1)?;
        let rounds = r.usize_capped("rounds", MAX_ROUNDS)?;
        Ok(SizeStats { per_round_max_bits, per_round_total_bits, coin_bits, rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    fn roundtrip<T: Encode + Decode>(x: &T) -> T {
        let mut w = Writer::new();
        x.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert!(r.is_exhausted(), "decoder must consume everything it wrote");
        back
    }

    #[test]
    fn graph_roundtrip() {
        let g = cycle(7);
        let back = roundtrip(&g);
        assert_eq!(back.n(), g.n());
        assert_eq!(back.m(), g.m());
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn graph_bad_endpoint_rejected() {
        let mut w = Writer::new();
        w.put_usize(3);
        w.put_usize(1);
        w.put_u32(0);
        w.put_u32(9); // out of range
        let bytes = w.into_bytes();
        assert!(matches!(Graph::decode(&mut Reader::new(&bytes)), Err(WireError::Invalid(_))));
    }

    #[test]
    fn connectivity_check() {
        assert!(is_connected(&cycle(5)));
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!is_connected(&disconnected));
    }

    #[test]
    fn witness_validation() {
        let mut w = Writer::new();
        encode_witness(&mut w, &Some(vec![0, 1, 2]));
        let bytes = w.into_bytes();
        assert_eq!(decode_witness(&mut Reader::new(&bytes), 3).unwrap(), Some(vec![0, 1, 2]));
        // Out of range for a smaller graph.
        assert!(decode_witness(&mut Reader::new(&bytes), 2).is_err());
        // Duplicate node.
        let mut w = Writer::new();
        encode_witness(&mut w, &Some(vec![0, 0]));
        let bytes = w.into_bytes();
        assert!(decode_witness(&mut Reader::new(&bytes), 3).is_err());
    }

    #[test]
    fn rho_roundtrip_and_validation() {
        let g = cycle(5);
        let rho = RotationSystem::port_order(&g);
        let mut w = Writer::new();
        encode_rho(&mut w, &g, &rho);
        let bytes = w.into_bytes();
        let back = decode_rho(&mut Reader::new(&bytes), &g).expect("decode rho");
        for v in 0..g.n() {
            assert_eq!(back.order_at(v), rho.order_at(v));
        }
        // Corrupt one edge id: no longer a permutation.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x3f;
        assert!(decode_rho(&mut Reader::new(&bad), &g).is_err());
    }

    #[test]
    fn captured_transcript_roundtrip() {
        let t = CapturedTranscript {
            rounds: vec![
                CapturedRound { stage: "a".into(), payload: vec![1, 2, 3] },
                CapturedRound { stage: "b/c".into(), payload: vec![] },
            ],
        };
        let back = roundtrip(&t);
        assert_eq!(back.rounds.len(), 2);
        assert_eq!(back.rounds[0].stage, "a");
        assert_eq!(back.rounds[0].payload, vec![1, 2, 3]);
        assert_eq!(back.rounds[1].stage, "b/c");
    }

    #[test]
    fn size_stats_roundtrip() {
        let s = SizeStats {
            per_round_max_bits: vec![8, 40, 66],
            per_round_total_bits: vec![800, 4000, 6600],
            coin_bits: 1234,
            rounds: 5,
        };
        assert_eq!(roundtrip(&s), s);
    }
}
