//! The versioned `.transcript` container: one full DIP run on disk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "PDIP" | version u16 | family u8 | prover u8 | transport u8
//! section 1 META    | section 2 INSTANCE | section 3 ROUNDS
//! section 4 STATS   | section 5 VERDICT  | fnv1a64 trailer u64
//! ```
//!
//! `family` tags the Theorem 1.2–1.7 protocol (1 = path-outerplanarity …
//! 6 = treewidth-2), `prover` is 0 for the honest prover and `k` for
//! cheat strategy `k − 1`, `transport` is 0 native / 1 simulated. META
//! carries the protocol parameters and the run seed; INSTANCE the
//! decoded-and-validated instance; ROUNDS the captured per-node label
//! rounds (the same bit accounting the E10 trace audit sees); STATS and
//! VERDICT the stored size accounting and outcome, which
//! [`Transcript::verify`] cross-checks against the replay.

use crate::codec::{
    decode_connected_graph, decode_rho, decode_witness, encode_rho, encode_witness, Decode, Encode,
};
use crate::format::{checked_payload, Reader, WireError, Writer, FORMAT_VERSION, MAGIC};
use pdip_core::{CapturedTranscript, DipProtocol, RunResult, SizeStats};
use pdip_protocols::{
    replay_verify, EmbInstance, EmbeddedPlanarity, OpInstance, Outerplanarity, PathOuterplanarity,
    PlInstance, Planarity, PopInstance, PopParams, ReplayOutcome, SeriesParallel, SpaInstance,
    Transport, Treewidth2, Tw2Instance, EMB_CHEATS, OP_CHEATS, PL_CHEATS, POP_CHEATS, SPA_CHEATS,
    TW2_CHEATS,
};

/// Section tags, in file order.
mod section {
    pub const META: u8 = 1;
    pub const INSTANCE: u8 = 2;
    pub const ROUNDS: u8 = 3;
    pub const STATS: u8 = 4;
    pub const VERDICT: u8 = 5;
}

/// A bound instance of one of the six protocol families.
#[derive(Debug, Clone)]
pub enum WireInstance {
    /// Theorem 1.2: path-outerplanarity.
    Pop(PopInstance),
    /// Theorem 1.3: outerplanarity.
    Op(OpInstance),
    /// Theorem 1.4: embedded planarity.
    Emb(EmbInstance),
    /// Theorem 1.5: planarity.
    Pl(PlInstance),
    /// Theorem 1.6: series-parallel graphs.
    Spa(SpaInstance),
    /// Theorem 1.7: treewidth ≤ 2.
    Tw2(Tw2Instance),
}

impl WireInstance {
    /// The wire family tag (1–6).
    pub fn family_tag(&self) -> u8 {
        match self {
            WireInstance::Pop(_) => 1,
            WireInstance::Op(_) => 2,
            WireInstance::Emb(_) => 3,
            WireInstance::Pl(_) => 4,
            WireInstance::Spa(_) => 5,
            WireInstance::Tw2(_) => 6,
        }
    }

    /// The family's protocol name (matches `pdip run --family`).
    pub fn family_name(&self) -> &'static str {
        family_name(self.family_tag()).unwrap_or("?")
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        match self {
            WireInstance::Pop(i) => i.graph.n(),
            WireInstance::Op(i) => i.graph.n(),
            WireInstance::Emb(i) => i.graph.n(),
            WireInstance::Pl(i) => i.graph.n(),
            WireInstance::Spa(i) => i.graph.n(),
            WireInstance::Tw2(i) => i.graph.n(),
        }
    }

    /// Ground-truth yes/no of the stored instance.
    pub fn is_yes(&self) -> bool {
        match self {
            WireInstance::Pop(i) => i.is_yes,
            WireInstance::Op(i) => i.is_yes,
            WireInstance::Emb(i) => i.is_yes,
            WireInstance::Pl(i) => i.is_yes,
            WireInstance::Spa(i) => i.is_yes,
            WireInstance::Tw2(i) => i.is_yes,
        }
    }

    /// Number of cheat strategies of this family.
    pub fn cheat_count(&self) -> usize {
        match self {
            WireInstance::Pop(_) => POP_CHEATS.len(),
            WireInstance::Op(_) => OP_CHEATS.len(),
            WireInstance::Emb(_) => EMB_CHEATS.len(),
            WireInstance::Pl(_) => PL_CHEATS.len(),
            WireInstance::Spa(_) => SPA_CHEATS.len(),
            WireInstance::Tw2(_) => TW2_CHEATS.len(),
        }
    }
}

/// The family name of a wire tag.
pub fn family_name(tag: u8) -> Option<&'static str> {
    Some(match tag {
        1 => "path-outerplanarity",
        2 => "outerplanarity",
        3 => "embedded-planarity",
        4 => "planarity",
        5 => "series-parallel",
        6 => "treewidth-2",
        _ => return None,
    })
}

/// A serialized DIP run: instance, prover identity, seeds, captured
/// rounds, and the stored outcome.
#[derive(Debug, Clone)]
pub struct Transcript {
    /// Prover identity: 0 = honest, `k` = cheat strategy `k − 1`.
    pub prover: u8,
    /// Edge-label transport: 0 = native, 1 = simulated.
    pub transport: u8,
    /// Soundness exponent `c` of [`PopParams`].
    pub params_c: u32,
    /// Spanning-tree repetitions of [`PopParams`].
    pub params_st_reps: u32,
    /// Seed the instance was generated from (provenance only).
    pub gen_seed: u64,
    /// Seed of the run: the verifier's public coins derive from it.
    pub run_seed: u64,
    /// The bound instance.
    pub instance: WireInstance,
    /// The captured per-node label rounds.
    pub rounds: CapturedTranscript,
    /// Stored size accounting of the run.
    pub stats: SizeStats,
    /// Stored verdict: true = accepted.
    pub accepted: bool,
}

/// The outcome of [`Transcript::verify`].
#[derive(Debug, Clone)]
pub enum VerifyOutcome {
    /// Replay matched byte-for-byte and the verifier accepts.
    Accepted(RunResult),
    /// Replay matched byte-for-byte and the verifier rejects (the
    /// transcript honestly records a rejecting run).
    VerifierRejected(RunResult),
    /// The stored rounds, stats, or verdict do not match the
    /// deterministic replay: the transcript was not produced by the
    /// claimed `(instance, prover, seed)`.
    ReplayMismatch {
        /// First divergence found.
        detail: String,
    },
}

impl Transcript {
    /// The [`PopParams`] stored in META.
    pub fn params(&self) -> PopParams {
        PopParams { c: self.params_c, st_repetitions: self.params_st_reps as usize }
    }

    /// The stored transport.
    pub fn transport_kind(&self) -> Transport {
        if self.transport == 0 {
            Transport::Native
        } else {
            Transport::Simulated
        }
    }

    /// The stored cheat-strategy index (`None` = honest prover).
    pub fn cheat(&self) -> Option<usize> {
        if self.prover == 0 {
            None
        } else {
            Some(self.prover as usize - 1)
        }
    }

    /// Binds the stored instance to its protocol and calls `f`.
    pub fn with_protocol<R>(&self, f: impl FnOnce(&dyn DipProtocol) -> R) -> R {
        let params = self.params();
        let tr = self.transport_kind();
        match &self.instance {
            WireInstance::Pop(i) => f(&PathOuterplanarity::new(i, params, tr)),
            WireInstance::Op(i) => f(&Outerplanarity::new(i, params, tr)),
            WireInstance::Emb(i) => f(&EmbeddedPlanarity::new(i, params, tr)),
            WireInstance::Pl(i) => f(&Planarity::new(i, params, tr)),
            WireInstance::Spa(i) => f(&SeriesParallel::new(i, params, tr)),
            WireInstance::Tw2(i) => f(&Treewidth2::new(i, params, tr)),
        }
    }

    /// Runs the protocol on `instance` with the given prover and seed
    /// under a capture scope, producing the transcript to serialize.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        instance: WireInstance,
        params: PopParams,
        transport: Transport,
        prover: u8,
        gen_seed: u64,
        run_seed: u64,
    ) -> Self {
        let mut t = Transcript {
            prover,
            transport: match transport {
                Transport::Native => 0,
                Transport::Simulated => 1,
            },
            params_c: params.c,
            params_st_reps: params.st_repetitions as u32,
            gen_seed,
            run_seed,
            instance,
            rounds: CapturedTranscript { rounds: Vec::new() },
            stats: SizeStats::default(),
            accepted: false,
        };
        let cheat = t.cheat();
        let (res, rounds) = t.with_protocol(|p| pdip_protocols::capture_run(p, cheat, run_seed));
        t.rounds = rounds;
        t.stats = res.stats.clone();
        t.accepted = res.accepted();
        t
    }

    /// Serializes into a finished, checksummed blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u8(self.instance.family_tag());
        w.put_u8(self.prover);
        w.put_u8(self.transport);

        let mut meta = Writer::new();
        meta.put_u32(self.params_c);
        meta.put_u32(self.params_st_reps);
        meta.put_usize(self.instance.n());
        meta.put_u64(self.gen_seed);
        meta.put_u64(self.run_seed);
        w.put_section(section::META, &meta.into_bytes());

        let mut inst = Writer::new();
        match &self.instance {
            WireInstance::Pop(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
                encode_witness(&mut inst, &i.witness);
            }
            WireInstance::Op(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
            }
            WireInstance::Emb(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
                encode_rho(&mut inst, &i.graph, &i.rho);
            }
            WireInstance::Pl(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
                match &i.witness_rho {
                    None => inst.put_bool(false),
                    Some(rho) => {
                        inst.put_bool(true);
                        encode_rho(&mut inst, &i.graph, rho);
                    }
                }
            }
            WireInstance::Spa(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
            }
            WireInstance::Tw2(i) => {
                i.graph.encode(&mut inst);
                inst.put_bool(i.is_yes);
            }
        }
        w.put_section(section::INSTANCE, &inst.into_bytes());

        let mut rounds = Writer::new();
        self.rounds.encode(&mut rounds);
        w.put_section(section::ROUNDS, &rounds.into_bytes());

        let mut stats = Writer::new();
        self.stats.encode(&mut stats);
        w.put_section(section::STATS, &stats.into_bytes());

        let mut verdict = Writer::new();
        verdict.put_bool(self.accepted);
        w.put_section(section::VERDICT, &verdict.into_bytes());

        w.finish()
    }

    /// Parses and validates a blob. Every malformed input — truncation,
    /// bit flips, oversized lengths, out-of-range indices — yields a
    /// structured [`WireError`]; decoding never panics.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let payload = checked_payload(data)?;
        let mut r = Reader::new(payload);
        if r.take(4)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let family = r.u8()?;
        if family_name(family).is_none() {
            return Err(WireError::Invalid(format!("unknown family tag {family}")));
        }
        let prover = r.u8()?;
        let transport = r.u8()?;
        if transport > 1 {
            return Err(WireError::Invalid(format!("unknown transport {transport}")));
        }

        let mut meta = r.section(section::META)?;
        let params_c = meta.u32()?;
        let params_st_reps = meta.u32()?;
        if params_c == 0 || params_st_reps == 0 {
            return Err(WireError::Invalid("zero protocol parameter".into()));
        }
        let declared_n = meta.u64()?;
        let gen_seed = meta.u64()?;
        let run_seed = meta.u64()?;

        let mut inst = r.section(section::INSTANCE)?;
        let instance = match family {
            1 => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                let witness = decode_witness(&mut inst, graph.n())?;
                WireInstance::Pop(PopInstance { graph, witness, is_yes })
            }
            2 => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                WireInstance::Op(OpInstance { graph, is_yes })
            }
            3 => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                let rho = decode_rho(&mut inst, &graph)?;
                WireInstance::Emb(EmbInstance { graph, rho, is_yes })
            }
            4 => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                let witness_rho =
                    if inst.bool()? { Some(decode_rho(&mut inst, &graph)?) } else { None };
                WireInstance::Pl(PlInstance { graph, witness_rho, is_yes })
            }
            5 => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                WireInstance::Spa(SpaInstance { graph, is_yes })
            }
            _ => {
                let graph = decode_connected_graph(&mut inst)?;
                let is_yes = inst.bool()?;
                WireInstance::Tw2(Tw2Instance { graph, is_yes })
            }
        };
        if !inst.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes in instance section".into()));
        }
        if declared_n != instance.n() as u64 {
            return Err(WireError::Invalid(format!(
                "declared n={declared_n} but instance has {} nodes",
                instance.n()
            )));
        }
        if prover as usize > instance.cheat_count() {
            return Err(WireError::Invalid(format!(
                "prover {prover} out of range ({} cheat strategies)",
                instance.cheat_count()
            )));
        }

        let mut rounds_r = r.section(section::ROUNDS)?;
        let rounds = CapturedTranscript::decode(&mut rounds_r)?;
        if !rounds_r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes in rounds section".into()));
        }

        let mut stats_r = r.section(section::STATS)?;
        let stats = SizeStats::decode(&mut stats_r)?;
        if !stats_r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes in stats section".into()));
        }

        let mut verdict_r = r.section(section::VERDICT)?;
        let accepted = verdict_r.bool()?;
        if !verdict_r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes in verdict section".into()));
        }
        if !r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes after last section".into()));
        }

        Ok(Transcript {
            prover,
            transport,
            params_c,
            params_st_reps,
            gen_seed,
            run_seed,
            instance,
            rounds,
            stats,
            accepted,
        })
    }

    /// Replay-verifies the stored run: re-runs the protocol with the
    /// stored `(instance, prover, seed)` under capture, byte-compares
    /// the emitted rounds against the stored ones, and cross-checks the
    /// stored stats and verdict against the replay.
    pub fn verify(&self) -> VerifyOutcome {
        let cheat = self.cheat();
        let outcome = self.with_protocol(|p| replay_verify(p, cheat, self.run_seed, &self.rounds));
        match outcome {
            ReplayOutcome::Mismatch { detail } => VerifyOutcome::ReplayMismatch { detail },
            ReplayOutcome::Verdict(res) => {
                if res.accepted() != self.accepted {
                    return VerifyOutcome::ReplayMismatch {
                        detail: format!(
                            "stored verdict {} but replay {}",
                            if self.accepted { "accept" } else { "reject" },
                            if res.accepted() { "accepts" } else { "rejects" }
                        ),
                    };
                }
                if res.stats != self.stats {
                    return VerifyOutcome::ReplayMismatch {
                        detail: "stored size stats differ from replayed stats".into(),
                    };
                }
                if res.accepted() {
                    VerifyOutcome::Accepted(res)
                } else {
                    VerifyOutcome::VerifierRejected(res)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::Graph;

    fn pop_transcript(seed: u64) -> Transcript {
        let n = 20;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let inst = WireInstance::Pop(PopInstance {
            graph: g,
            witness: Some((0..n).collect()),
            is_yes: true,
        });
        Transcript::record(inst, PopParams::default(), Transport::Simulated, 0, 1, seed)
    }

    #[test]
    fn encode_decode_roundtrip_bytes() {
        let t = pop_transcript(11);
        let bytes = t.encode();
        let back = Transcript::decode(&bytes).expect("decode");
        assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
        assert_eq!(back.instance.family_tag(), 1);
        assert_eq!(back.run_seed, 11);
        assert!(back.accepted);
    }

    #[test]
    fn verify_accepts_honest_transcript() {
        let t = pop_transcript(12);
        match t.verify() {
            VerifyOutcome::Accepted(_) => {}
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn tampered_verdict_is_replay_mismatch() {
        let mut t = pop_transcript(13);
        t.accepted = false;
        match t.verify() {
            VerifyOutcome::ReplayMismatch { .. } => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_round_is_replay_mismatch() {
        let mut t = pop_transcript(14);
        let last = t.rounds.rounds.len() - 1;
        if let Some(b) = t.rounds.rounds[last].payload.first_mut() {
            *b ^= 0x11;
        }
        match t.verify() {
            VerifyOutcome::ReplayMismatch { .. } => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_truncation_and_bitflips() {
        let bytes = pop_transcript(15).encode();
        for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(Transcript::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for i in (0..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Transcript::decode(&bad).is_err(), "bit flip at {i} must not decode");
        }
    }
}
