//! Length-prefixed frame I/O for the verification service.
//!
//! A frame is `len u32 (little-endian) | payload`. The reader enforces
//! two hardening bounds so a hostile or broken peer can never pin a
//! serving thread or size an allocation:
//!
//! * **Frame-size cap.** `len` is checked against a caller-supplied
//!   limit *before* the payload buffer is allocated
//!   ([`read_frame_limited`]); the default cap is
//!   [`DEFAULT_MAX_FRAME_BYTES`].
//! * **Per-frame read deadline.** [`read_frame_deadline`] bounds the
//!   *total* wall time one frame may take to arrive. Combined with a
//!   socket read timeout (which wakes blocked reads), this defeats both
//!   the fully stalled peer and the slow-loris drip that feeds one byte
//!   per timeout window: progress does not reset the frame's clock.
//!
//! Every failure is a structured [`std::io::Error`] whose kind maps
//! onto a stable fault class via [`fault_class`] — the concurrent
//! server uses these classes to answer the peer (best-effort) and to
//! account per-connection faults without ever tearing down unrelated
//! connections.

use std::io::{Error, ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Default hard cap on one frame's payload (64 MiB) — the value the
/// serve front-end has used since the E12 artifacts were committed.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 26;

/// Reads one `len u32 | payload` frame under the default frame-size
/// cap; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(input: &mut dyn Read) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_limited(input, DEFAULT_MAX_FRAME_BYTES)
}

/// [`read_frame`] with an explicit frame-size cap: a header declaring
/// more than `max_frame_bytes` is rejected with
/// [`ErrorKind::InvalidData`] before any payload allocation.
pub fn read_frame_limited(
    input: &mut dyn Read,
    max_frame_bytes: usize,
) -> std::io::Result<Option<Vec<u8>>> {
    read_frame_deadline(input, max_frame_bytes, None)
}

/// [`read_frame_limited`] with a per-frame read deadline on the whole
/// frame (header and payload together).
///
/// The deadline needs the underlying transport to wake blocked reads —
/// on a [`std::net::TcpStream`], set a read timeout of (at most) the
/// same duration. Timeouts classify in two ways:
///
/// * [`ErrorKind::WouldBlock`]: the peer sent *nothing* — an idle
///   connection that outlived the deadline (`fault_class`:
///   `idle-timeout`).
/// * [`ErrorKind::TimedOut`]: the peer stalled or dripped bytes
///   *mid-frame* (`fault_class`: `read-stall`).
pub fn read_frame_deadline(
    input: &mut dyn Read,
    max_frame_bytes: usize,
    deadline: Option<Duration>,
) -> std::io::Result<Option<Vec<u8>>> {
    let started = deadline.map(|_| Instant::now());
    let overdue = |started: &Option<Instant>| match (started, deadline) {
        (Some(t0), Some(d)) => t0.elapsed() > d,
        _ => false,
    };
    let stall = || Error::new(ErrorKind::TimedOut, "frame read exceeded the per-frame deadline");

    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match input.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(Error::new(ErrorKind::UnexpectedEof, "truncated frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => {
                return Err(Error::new(
                    ErrorKind::WouldBlock,
                    "idle connection: no frame within the read deadline",
                ))
            }
            Err(e) if is_timeout(&e) => return Err(stall()),
            Err(e) => return Err(e),
        }
        if overdue(&started) {
            return Err(stall());
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame_bytes {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame_bytes}"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match input.read(&mut payload[filled..]) {
            Ok(0) => return Err(Error::new(ErrorKind::UnexpectedEof, "truncated frame payload")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(stall()),
            Err(e) => return Err(e),
        }
        if overdue(&started) {
            return Err(stall());
        }
    }
    Ok(Some(payload))
}

/// Writes one `len u32 | payload` frame.
pub fn write_frame(output: &mut dyn Write, payload: &[u8]) -> std::io::Result<()> {
    output.write_all(&(payload.len() as u32).to_le_bytes())?;
    output.write_all(payload)
}

/// Whether an I/O error is a read-timeout wakeup (platforms disagree on
/// the kind a timed-out socket read reports).
fn is_timeout(e: &Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// The stable per-connection fault classes, spelled exactly once.
///
/// These strings appear in `ConnError` response details, per-connection
/// observability counters, metrics label values, and the E13/E14
/// artifacts — they are part of the serve contract, not free-form
/// messages. Everything that matches on or renders a fault class must
/// name these constants so the spellings cannot drift.
pub mod fault {
    /// Peer closed mid-frame: header or payload cut short.
    pub const TRUNCATED_FRAME: &str = "truncated-frame";
    /// Declared frame length exceeds the configured cap.
    pub const OVERSIZED_FRAME: &str = "oversized-frame";
    /// No frame arrived at all within the read deadline.
    pub const IDLE_TIMEOUT: &str = "idle-timeout";
    /// Bytes stopped (or dripped too slowly) mid-frame.
    pub const READ_STALL: &str = "read-stall";
    /// Connection reset/aborted or pipe broken by the peer.
    pub const PEER_RESET: &str = "peer-reset";
    /// Any other I/O failure.
    pub const IO_ERROR: &str = "io-error";

    /// Every fault class, in the order counters are pre-registered.
    pub const ALL: [&str; 6] =
        [TRUNCATED_FRAME, OVERSIZED_FRAME, IDLE_TIMEOUT, READ_STALL, PEER_RESET, IO_ERROR];
}

/// The stable per-connection fault class of a frame-read error — one
/// of the [`fault`] constants.
pub fn fault_class(kind: ErrorKind) -> &'static str {
    match kind {
        ErrorKind::UnexpectedEof => fault::TRUNCATED_FRAME,
        ErrorKind::InvalidData => fault::OVERSIZED_FRAME,
        ErrorKind::WouldBlock => fault::IDLE_TIMEOUT,
        ErrorKind::TimedOut => fault::READ_STALL,
        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe => {
            fault::PEER_RESET
        }
        _ => fault::IO_ERROR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_invalid_data_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame_limited(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert_eq!(fault_class(err.kind()), "oversized-frame");
    }

    #[test]
    fn cap_is_exact() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 16]).unwrap();
        assert!(read_frame_limited(&mut Cursor::new(buf.clone()), 16).unwrap().is_some());
        assert_eq!(
            read_frame_limited(&mut Cursor::new(buf), 15).unwrap_err().kind(),
            ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_header_and_payload_are_unexpected_eof() {
        let mut full = Vec::new();
        write_frame(&mut full, b"abcdef").unwrap();
        for cut in 1..full.len() {
            let err = read_frame(&mut Cursor::new(&full[..cut])).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "cut at {cut}");
            assert_eq!(fault_class(err.kind()), "truncated-frame");
        }
    }

    /// A reader that yields some bytes, then reports a socket-style
    /// timeout on every further read.
    struct StallAfter {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos).min(1);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(Error::new(ErrorKind::WouldBlock, "socket read timeout"))
            }
        }
    }

    #[test]
    fn idle_timeout_and_mid_frame_stall_classify_differently() {
        // Nothing sent at all: idle-timeout.
        let mut idle = StallAfter { data: vec![], pos: 0 };
        let err = read_frame_deadline(&mut idle, 1024, Some(Duration::from_secs(1))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
        assert_eq!(fault_class(err.kind()), "idle-timeout");

        // Half a header then silence: read-stall.
        let mut stall = StallAfter { data: vec![4, 0], pos: 0 };
        let err = read_frame_deadline(&mut stall, 1024, Some(Duration::from_secs(1))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert_eq!(fault_class(err.kind()), "read-stall");

        // Header delivered, payload stalls: read-stall.
        let mut body = StallAfter { data: vec![4, 0, 0, 0, b'x'], pos: 0 };
        let err = read_frame_deadline(&mut body, 1024, Some(Duration::from_secs(1))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
    }

    /// A reader that drips one byte per call, never erroring — models a
    /// slow-loris peer against a transport whose per-read timeout never
    /// fires because each read makes progress.
    struct Drip {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.delay);
            if self.pos < self.data.len() && !buf.is_empty() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Ok(0)
            }
        }
    }

    #[test]
    fn drip_feeding_cannot_outlive_the_frame_deadline() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &[9u8; 64]).unwrap();
        let mut drip = Drip { data: frame, pos: 0, delay: Duration::from_millis(5) };
        let err =
            read_frame_deadline(&mut drip, 1024, Some(Duration::from_millis(20))).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut, "total-elapsed check must fire mid-frame");
    }

    #[test]
    fn no_deadline_means_no_clock() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &[9u8; 8]).unwrap();
        let mut drip = Drip { data: frame, pos: 0, delay: Duration::from_millis(1) };
        let got = read_frame_deadline(&mut drip, 1024, None).unwrap().unwrap();
        assert_eq!(got, vec![9u8; 8]);
    }
}
