//! Low-level framing: the `PDIP` container, bounded reads, checksums.
//!
//! A wire blob is
//!
//! ```text
//! magic "PDIP" | version u16 | header bytes | sections | checksum u64
//! ```
//!
//! with every multi-byte integer little-endian. Each section is
//! `tag u8 | len u32 | payload` and the trailer is the FNV-1a-64 hash of
//! everything before it. The [`Reader`] is hardened against adversarial
//! input: every length is checked against both a hard cap and the number
//! of bytes actually remaining *before* any allocation, so a corrupted or
//! crafted length field yields a structured [`WireError`], never a panic
//! or an OOM-sized allocation.

use std::fmt;

/// The 4-byte container magic.
pub const MAGIC: [u8; 4] = *b"PDIP";

/// Current format version. Bump on any incompatible layout change; see
/// DESIGN.md §5 for the compatibility policy.
pub const FORMAT_VERSION: u16 = 1;

/// Hard cap on node counts in decoded graphs.
pub const MAX_NODES: usize = 1 << 24;
/// Hard cap on edge counts in decoded graphs.
pub const MAX_EDGES: usize = 1 << 26;
/// Hard cap on captured round counts.
pub const MAX_ROUNDS: usize = 1 << 16;
/// Hard cap on decoded string lengths (stage names, reject reasons).
pub const MAX_STR: usize = 4096;
/// Hard cap on a single section payload.
pub const MAX_SECTION: usize = 1 << 28;

/// Structured decode failures. Every malformed input maps to one of
/// these — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a field or section requires.
    Truncated,
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// A format version this decoder does not understand.
    UnsupportedVersion(u16),
    /// The FNV-1a trailer does not match the payload.
    Checksum,
    /// A length field exceeds its hard cap or the bytes remaining.
    TooLarge {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A structurally invalid value (bad tag, out-of-range index,
    /// non-permutation rotation, …).
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadMagic => write!(f, "bad magic (not a PDIP blob)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::TooLarge { what, len } => write!(f, "{what} length {len} out of bounds"),
            WireError::Invalid(msg) => write!(f, "invalid field: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit hash of `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, x: bool) {
        self.put_u8(x as u8);
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, x: &[u8]) {
        self.buf.extend_from_slice(x);
    }

    /// Appends a `u32`-length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.put_bytes(s.as_bytes());
    }

    /// Appends a tagged, `u32`-length-prefixed section.
    pub fn put_section(&mut self, tag: u8, payload: &[u8]) {
        self.put_u8(tag);
        self.put_u32(payload.len() as u32);
        self.put_bytes(payload);
    }

    /// Finishes the blob: appends the FNV-1a trailer and returns the
    /// bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.put_u64(sum);
        self.buf
    }

    /// The bytes written so far (no trailer).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A bounds-checked little-endian cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Invalid(format!("bool byte {b}"))),
        }
    }

    /// Reads a `u64` and checks it fits a `usize` and the cap.
    pub fn usize_capped(&mut self, what: &'static str, cap: usize) -> Result<usize, WireError> {
        let x = self.u64()?;
        if x > cap as u64 {
            return Err(WireError::TooLarge { what, len: x });
        }
        Ok(x as usize)
    }

    /// Reads an element count and checks `count <= cap` **and**
    /// `count * min_elem_bytes <= remaining` before the caller allocates
    /// anything — an adversarial length field cannot force an OOM-sized
    /// reservation.
    pub fn count(
        &mut self,
        what: &'static str,
        cap: usize,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let n = self.usize_capped(what, cap)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::TooLarge { what, len: n as u64 });
        }
        Ok(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string (capped at
    /// [`MAX_STR`]).
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_STR || len > self.remaining() {
            return Err(WireError::TooLarge { what: "string", len: len as u64 });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string".into()))
    }

    /// Reads a section header with the expected `tag`, returning a
    /// sub-reader over exactly the section payload.
    pub fn section(&mut self, tag: u8) -> Result<Reader<'a>, WireError> {
        let got = self.u8()?;
        if got != tag {
            return Err(WireError::Invalid(format!("expected section tag {tag}, found {got}")));
        }
        let len = self.u32()? as usize;
        if len > MAX_SECTION || len > self.remaining() {
            return Err(WireError::TooLarge { what: "section", len: len as u64 });
        }
        Ok(Reader::new(self.take(len)?))
    }
}

/// Checks the FNV-1a trailer of a finished blob and returns the payload
/// (everything before the trailer).
pub fn checked_payload(data: &[u8]) -> Result<&[u8], WireError> {
    if data.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    if fnv1a64(payload) != stored {
        return Err(WireError::Checksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_bool(true);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn oversized_count_is_rejected_before_allocation() {
        // Claims u64::MAX elements with 2 bytes of payload behind it.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_u16(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count("elems", MAX_EDGES, 8), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn checksum_detects_bitflip() {
        let mut w = Writer::new();
        w.put_str("payload");
        let mut blob = w.finish();
        assert!(checked_payload(&blob).is_ok());
        blob[3] ^= 1;
        assert_eq!(checked_payload(&blob).unwrap_err(), WireError::Checksum);
    }

    #[test]
    fn section_roundtrip_and_bad_tag() {
        let mut w = Writer::new();
        w.put_section(2, &[9, 9, 9]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.section(1), Err(WireError::Invalid(_))));
        let mut r = Reader::new(&bytes);
        let mut s = r.section(2).unwrap();
        assert_eq!(s.take(3).unwrap(), &[9, 9, 9]);
    }
}
