//! E8 — ablations on the design choices DESIGN.md calls out.
//!
//! 1. **Block length** (§4 remark): the paper picks blocks of ⌈log₂ n⌉
//!    nodes. Smaller blocks shrink the position fields but multiply the
//!    block count (and break once positions no longer fit — the
//!    implementation auto-bumps); larger blocks waste bits.
//! 2. **Soundness exponent c**: fields of size log^c n trade label width
//!    against the 1/polylog n soundness error.
//! 3. **Spanning-tree repetitions** (Lemma 2.5 amplification): each
//!    repetition adds a prime/residue pair and squares the cheat's
//!    survival probability.

use pdip_bench::print_table;
use pdip_graph::gen;
use pdip_protocols::{LrCheat, LrParams, LrSorting, Transport};
use pdip_protocols::{PathOuterplanarity, PopCheat, PopInstance, PopParams};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 4096;
    let mut rng = SmallRng::seed_from_u64(8);

    // --- Ablation 1: LR-sorting block length ---
    println!("E8a — LR-sorting block-length ablation (n = {n})\n");
    let inst = gen::lr::random_lr_yes(n, n / 3, true, &mut rng);
    let headers = ["requested L", "effective L", "proof size", "accepted"];
    let mut rows = Vec::new();
    for req in [2usize, 4, 8, 12, 24, 64, 256] {
        let lr = LrSorting::new(&inst, LrParams { c: 3, block_len: Some(req) }, Transport::Native);
        let res = lr.run(None, 1);
        rows.push(vec![
            req.to_string(),
            lr.block_len.to_string(),
            res.stats.proof_size().to_string(),
            res.accepted().to_string(),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nThe paper's choice L = ⌈log₂ n⌉ = 12 sits at the sweet spot: shorter\n\
         blocks are bumped up (positions must fit in L bits), longer blocks only\n\
         add index width.\n"
    );

    // --- Ablation 2: soundness exponent c ---
    println!("E8b — field exponent c: label width vs measured soundness (n = 256)\n");
    let headers = ["c", "proof size", "cheat acceptance (outer-forged-index)"];
    let mut rows = Vec::new();
    for c in [1u32, 2, 3, 4] {
        let mut size = 0;
        let mut accepted = 0u32;
        let trials = 120;
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(1000 + t as u64);
            let Some(no) = gen::lr::random_lr_no(256, 100, true, 1, &mut rng) else { continue };
            let lr = LrSorting::new(&no, LrParams { c, block_len: None }, Transport::Native);
            if lr.run(Some(LrCheat::OuterForgedIndex), t as u64).accepted() {
                accepted += 1;
            }
            let yes = gen::lr::random_lr_yes(256, 100, true, &mut rng);
            let lr_yes = LrSorting::new(&yes, LrParams { c, block_len: None }, Transport::Native);
            size = lr_yes.run(None, t as u64).stats.proof_size();
        }
        rows.push(vec![c.to_string(), size.to_string(), format!("{accepted}/{trials}")]);
    }
    print_table(&headers, &rows);
    println!(
        "\nLarger c widens every field element but drives the soundness error down\n\
         polynomially in log n.\n"
    );

    // --- Ablation 3: spanning-tree repetition ---
    // A path with one pendant node: the greedy fake path misses exactly
    // the pendant, so the cheat survives iff the two claimed roots sample
    // the same prime in every repetition — the repetition count drives
    // the survival probability to (1/#primes)^rep.
    println!("E8c — spanning-tree verification repetitions (one-extra-root cheat, n = 64)\n");
    let headers = ["repetitions", "fake-path acceptance", "ST label bits"];
    let mut rows = Vec::new();
    let n_small = 64usize;
    let mut g = pdip_graph::Graph::from_edges(n_small - 1, (0..n_small - 2).map(|i| (i, i + 1)));
    let pend = g.add_node();
    g.add_edge(n_small / 2, pend);
    let inst = PopInstance { graph: g, witness: None, is_yes: false };
    for rep in [1usize, 2, 4] {
        let trials = 400;
        let mut accepted = 0;
        let mut size = 0;
        let params = PopParams { c: 2, st_repetitions: rep };
        let p = PathOuterplanarity::new(&inst, params, Transport::Native);
        for t in 0..trials {
            let res = p.run(Some(PopCheat::FakePath), 2000 + t as u64);
            if res.accepted() {
                accepted += 1;
            }
            size = size.max(res.stats.per_round_max_bits.get(1).copied().unwrap_or(0));
        }
        rows.push(vec![rep.to_string(), format!("{accepted}/{trials}"), size.to_string()]);
    }
    print_table(&headers, &rows);
    println!(
        "\nEach repetition multiplies the cheat's survival probability by another\n\
         1/#primes factor while adding one prime/residue pair to the labels."
    );
}
