//! E5 — the Ω(log n) one-round lower bound (Theorem 1.8), measured.
//!
//! For the one-round nesting scheme with names compressed to `b` bits, the
//! collision forgery of `pdip_protocols::lower_bound` produces an accepted
//! proof of a *crossing* instance whenever `2^b` fits inside the path. The
//! binary reports the forgery threshold `b*(n)` — the largest compromised
//! width — which tracks log₂ n, while the interactive protocol's labels
//! (O(log log n)) stay far below it.

use pdip_bench::print_table;
use pdip_protocols::lower_bound::{
    attempt_forgery, forgery_threshold, full_width_rejects_crossing,
};

fn main() {
    println!("E5 — forgery threshold of one-round schemes vs n (Theorem 1.8)\n");
    let headers = ["n", "log2 n", "forgery threshold b*", "log2 n - b*", "full width rejects"];
    let mut rows = Vec::new();
    for k in 6..=16 {
        let n = 1usize << k;
        let t = forgery_threshold(n);
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            t.to_string(),
            (k as i64 - t as i64).to_string(),
            full_width_rejects_crossing(n).to_string(),
        ]);
    }
    print_table(&headers, &rows);

    println!("\nPer-width detail at n = 4096:");
    let headers = ["name width b", "forgery outcome"];
    let mut rows = Vec::new();
    for b in 1..=13 {
        let outcome = match attempt_forgery(4096, b) {
            Some(true) => "ACCEPTED (forged no-instance proof)",
            Some(false) => "rejected",
            None => "infeasible (2^b exceeds the instance)",
        };
        rows.push(vec![b.to_string(), outcome.into()]);
    }
    print_table(&headers, &rows);
    println!(
        "\nShape check: b*(n) = log2 n - Θ(1) — any one-round scheme whose names\n\
         carry o(log n) bits admits colliding arcs and forged proofs, matching the\n\
         Ω(log n) bound. The 5-round protocol evades this with per-run random\n\
         names: collisions can no longer be planted in advance."
    );
}
