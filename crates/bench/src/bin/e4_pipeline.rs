//! E4 — Figure 2 of the paper: the reduction pipeline, run end to end.
//!
//! The paper derives everything from LR-sorting:
//!
//! ```text
//!   LR-sorting (Lem 4.1) ──► path-outerplanarity (Thm 1.2)
//!        │                          │           │
//!        │                          ▼           ▼
//!        │                 outerplanarity   embedded planarity (Thm 1.4)
//!        │                  (Thm 1.3)              │
//!        │                                        ▼
//!        │                                  planarity (Thm 1.5)
//!        └────────► series-parallel (Thm 1.6) ──► treewidth ≤ 2 (Thm 1.7)
//! ```
//!
//! This binary exercises every arrow with a live instance: the sub-
//! protocol of each node of the chart runs inside its successor.

use pdip_bench::{print_table, Family, YesInstance};
use pdip_graph::gen;
use pdip_protocols::{LrParams, LrSorting, PopParams, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("E4 — the Figure-2 dependency pipeline, exercised end to end\n");
    let n = 400;
    let mut rows = Vec::new();
    let mut rng = SmallRng::seed_from_u64(4);

    // The root of the chart: LR-sorting itself.
    let lr_inst = gen::lr::random_lr_yes(n, n / 2, true, &mut rng);
    let lr = LrSorting::new(&lr_inst, LrParams::default(), Transport::Native);
    let res = lr.run(None, 1);
    rows.push(vec![
        "LR-sorting (Lemma 4.1)".into(),
        "—".into(),
        format!("{}", res.accepted()),
        res.stats.proof_size().to_string(),
    ]);
    assert!(res.accepted());

    // Each theorem node, which internally runs its predecessors.
    for (fam, depends) in [
        (Family::PathOuterplanar, "LR-sorting + path commitment + nesting"),
        (Family::Outerplanar, "path-outerplanarity per block (Thm 6.1)"),
        (Family::EmbeddedPlanarity, "path-outerplanarity on h(G,T,ρ) (Lem 7.1)"),
        (Family::Planarity, "embedded planarity + ρ distribution (Lem 7.2)"),
        (Family::SeriesParallel, "nesting per ear (Lem 8.1 decomposition)"),
        (Family::Treewidth2, "series-parallel per block (Lem 8.2)"),
    ] {
        let inst = YesInstance::generate(fam, n, 1234);
        let (ok, size) = inst.with_protocol(PopParams::default(), Transport::Native, |p| {
            let r = p.run_honest(2);
            (r.accepted(), r.stats.proof_size())
        });
        rows.push(vec![fam.name().into(), depends.into(), ok.to_string(), size.to_string()]);
        assert!(ok, "{} failed in the pipeline", fam.name());
    }
    print_table(&["protocol", "built on", "accepted", "proof bits"], &rows);
    println!("\nEvery arrow of Figure 2 executed with a live instance. ✓");
}
