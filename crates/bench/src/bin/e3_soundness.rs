//! E3 — empirical soundness: cheating provers vs no-instances.
//!
//! Theorems 1.2–1.7 claim soundness error 1/polylog n. For each family we
//! generate structured no-instances, run every implemented cheating
//! strategy many times, and report acceptance rates at two instance
//! sizes — the rates should be small and *shrink* as n grows (larger
//! fields and longer tags).
//!
//! The two big grids (E3 and E3b: families × cheats × sizes × 80 trials)
//! execute on the `pdip-engine` worker pool (`--threads N`); the legacy
//! per-trial seed formulas are reproduced via [`SeedMode::Explicit`], so
//! the tables match the historical serial output byte for byte. E3c/E3d
//! isolate single probabilistic events and stay serial.

use pdip_bench::{reporter_from_args, threads_flag, FAMILIES};
use pdip_engine::{Engine, JobCoords, Prover, ProverSpec, SeedMode, SweepOutcome, SweepSpec};
use pdip_protocols::{PopParams, Transport};

/// The historical E3 seeds: instances from `t * 31 + n`, runs from `t`.
fn e3_seeds(c: &JobCoords) -> (u64, u64) {
    (c.trial * 31 + c.n as u64, c.trial)
}

/// The historical E3b seeds: instances from `t * 37 + n`, runs from `t`.
fn e3b_seeds(c: &JobCoords) -> (u64, u64) {
    (c.trial * 37 + c.n as u64, c.trial)
}

/// Renders one `(family, cheat, per-size acceptance rates)` table from
/// the sweep records: rows in family × cheat-index order, one rate cell
/// per instance size.
fn cheat_rate_rows(outcome: &SweepOutcome, sizes: &[usize], trials: u64) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for fam in FAMILIES {
        for (s, cheat_name) in fam.cheat_names().into_iter().enumerate() {
            let mut row = vec![fam.name().to_string(), cheat_name];
            for &n in sizes {
                let accepted = outcome
                    .records
                    .iter()
                    .filter(|r| {
                        r.family == fam && r.n == n && r.prover == Prover::Cheat(s) && r.accepted
                    })
                    .count() as u64;
                row.push(format!("{:.1}%", 100.0 * accepted as f64 / trials as f64));
            }
            rows.push(row);
        }
    }
    rows
}

fn main() {
    let threads = threads_flag();
    let trials = 80u64;
    let mut rep = reporter_from_args();
    rep.line(&format!("E3 — cheating-prover acceptance rates ({trials} trials per cell)\n"));
    let sizes = [60usize, 300];
    let spec = SweepSpec {
        families: FAMILIES.to_vec(),
        sizes: sizes.to_vec(),
        provers: vec![ProverSpec::AllCheats],
        trials,
        seeds: SeedMode::Explicit(e3_seeds),
        ..SweepSpec::default()
    };
    let outcome = Engine::with_threads(threads).run(&spec);
    assert!(outcome.failures.is_empty(), "E3 jobs must not panic: {:?}", outcome.failures);
    let headers = ["protocol", "cheat", "rate @ n~60", "rate @ n~300"];
    rep.table(&headers, &cheat_rate_rows(&outcome, &sizes, trials));
    rep.line(
        "\nShape check: every rate is far below 50% and the n~300 column is at most\n\
         the n~60 column (up to sampling noise) — the 1/polylog n soundness error\n\
         shrinks with n. Deterministically-caught cheats read 0.0%.\n",
    );
    rep.summary(&outcome.metrics);
    rep.line("");

    // At the paper's default parameters (c = 3) the error is ~log^-3 n —
    // invisible at this trial count. Weakening the fields to c = 1 and a
    // single spanning-tree repetition makes the 1/polylog n decay visible.
    rep.line(&format!("E3b — weakened parameters (c = 1, 1 ST repetition), {trials} trials\n"));
    let weak = PopParams { c: 1, st_repetitions: 1 };
    let sizes_b = [60usize, 300, 1200];
    let spec_b = SweepSpec {
        families: FAMILIES.to_vec(),
        sizes: sizes_b.to_vec(),
        provers: vec![ProverSpec::AllCheats],
        trials,
        seeds: SeedMode::Explicit(e3b_seeds),
        params: weak,
        ..SweepSpec::default()
    };
    let outcome_b = Engine::with_threads(threads).run(&spec_b);
    assert!(outcome_b.failures.is_empty(), "E3b jobs must not panic: {:?}", outcome_b.failures);
    let headers = ["protocol", "cheat", "rate @ n~60", "rate @ n~300", "rate @ n~1200"];
    rep.table(&headers, &cheat_rate_rows(&outcome_b, &sizes_b, trials));
    rep.line(
        "\nMost composite cheats trip several independent checks at once, so even\n\
         weakened parameters leave them near 0%. The remaining sections isolate\n\
         single probabilistic events to expose the raw 1/polylog n error.\n",
    );
    rep.summary(&outcome_b.metrics);
    rep.line("");

    // --- E3c: LR-sorting, the pure field-collision events ---
    rep.line("E3c — LR-sorting cheats at c = 1 (single collision events), 300 trials\n");
    use pdip_graph::gen;
    use pdip_protocols::{LrCheat, LrParams, LrSorting};
    let headers = ["cheat", "n=64", "n=1024", "n=16384"];
    let mut rows = Vec::new();
    for cheat in [LrCheat::ClaimInner, LrCheat::OuterForgedIndex, LrCheat::SwapBlockPositions] {
        let mut cells = vec![format!("{cheat:?}")];
        for n in [64usize, 1024, 16384] {
            let mut accepted = 0u32;
            let mut ran = 0u32;
            for t in 0..300u64 {
                use rand::SeedableRng as _;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t * 13 + n as u64);
                let Some(no) = gen::lr::random_lr_no(n, n / 3, true, 1, &mut rng) else {
                    continue;
                };
                ran += 1;
                let lr = LrSorting::new(&no, LrParams { c: 1, block_len: None }, Transport::Native);
                if lr.run(Some(cheat), t).accepted() {
                    accepted += 1;
                }
            }
            cells.push(format!("{:.1}%", 100.0 * accepted as f64 / ran.max(1) as f64));
        }
        rows.push(cells);
    }
    rep.table(&headers, &rows);
    rep.line(
        "\nWith c = 1 the collision events survive a visible few percent of runs\n\
         (each cheat also trips auxiliary checks, so rates sit below the raw 1/p).\n\
         The clean single-event decay is isolated in E3d below and in the c-sweep\n\
         of E8b.\n",
    );

    // --- E3d: the spanning-tree prime-collision event ---
    rep.line("E3d — fake-path with exactly one extra root (Lemma 2.5 event), 300 trials\n");
    use pdip_protocols::{PathOuterplanarity, PopCheat, PopInstance};
    let headers = ["n", "window primes", "predicted 1/#primes", "measured acceptance"];
    let mut rows = Vec::new();
    for n in [64usize, 1024, 16384, 65536] {
        // A path with a single pendant node: outerplanar, no Hamiltonian
        // path, and the greedy fake path misses exactly the pendant.
        let mut g = pdip_graph::Graph::from_edges(n - 1, (0..n - 2).map(|i| (i, i + 1)));
        let pend = g.add_node();
        g.add_edge(n / 2, pend);
        let inst = PopInstance { graph: g, witness: None, is_yes: false };
        let params = PopParams { c: 2, st_repetitions: 1 };
        let p = PathOuterplanarity::new(&inst, params, Transport::Native);
        let mut accepted = 0u32;
        for t in 0..300u64 {
            if p.run(Some(PopCheat::FakePath), t).accepted() {
                accepted += 1;
            }
        }
        let st =
            pdip_protocols::SpanningTreeVerification::new(pdip_protocols::StParams::for_n(n, 2, 1));
        let primes = st.primes().len();
        rows.push(vec![
            n.to_string(),
            primes.to_string(),
            format!("{:.1}%", 100.0 / primes as f64),
            format!("{:.1}%", 100.0 * accepted as f64 / 300.0),
        ]);
    }
    rep.table(&headers, &rows);
    rep.line(
        "\nThe measured acceptance matches the predicted prime-collision probability\n\
         and shrinks as the window (log^c n) grows — the 1/polylog n error, live.",
    );
}
