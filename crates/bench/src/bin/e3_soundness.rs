//! E3 — empirical soundness: cheating provers vs no-instances.
//!
//! Theorems 1.2–1.7 claim soundness error 1/polylog n. For each family we
//! generate structured no-instances, run every implemented cheating
//! strategy many times, and report acceptance rates at two instance
//! sizes — the rates should be small and *shrink* as n grows (larger
//! fields and longer tags).

use pdip_bench::{no_instance, print_table, FAMILIES};
use pdip_protocols::{PopParams, Transport};

fn main() {
    let trials = 80u64;
    println!("E3 — cheating-prover acceptance rates ({trials} trials per cell)\n");
    let headers = ["protocol", "cheat", "rate @ n~60", "rate @ n~300"];
    let mut rows = Vec::new();
    for fam in FAMILIES {
        let cheat_count = no_instance(fam, 60, 0)
            .with_protocol(PopParams::default(), Transport::Native, |p| p.cheat_names().len());
        for s in 0..cheat_count {
            let mut cells = Vec::new();
            let mut cheat_name = String::new();
            for n in [60usize, 300] {
                let mut accepted = 0u64;
                for t in 0..trials {
                    let inst = no_instance(fam, n, t * 31 + n as u64);
                    inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                        cheat_name = p.cheat_names()[s].clone();
                        if p.run_cheat(s, t).accepted() {
                            accepted += 1;
                        }
                    });
                }
                cells.push(format!("{:.1}%", 100.0 * accepted as f64 / trials as f64));
            }
            rows.push(vec![fam.name().to_string(), cheat_name, cells[0].clone(), cells[1].clone()]);
        }
    }
    print_table(&headers, &rows);
    println!(
        "\nShape check: every rate is far below 50% and the n~300 column is at most\n\
         the n~60 column (up to sampling noise) — the 1/polylog n soundness error\n\
         shrinks with n. Deterministically-caught cheats read 0.0%.\n"
    );

    // At the paper's default parameters (c = 3) the error is ~log^-3 n —
    // invisible at this trial count. Weakening the fields to c = 1 and a
    // single spanning-tree repetition makes the 1/polylog n decay visible.
    println!("E3b — weakened parameters (c = 1, 1 ST repetition), {trials} trials\n");
    let weak = PopParams { c: 1, st_repetitions: 1 };
    let headers = ["protocol", "cheat", "rate @ n~60", "rate @ n~300", "rate @ n~1200"];
    let mut rows = Vec::new();
    for fam in FAMILIES {
        let cheat_count = no_instance(fam, 60, 0)
            .with_protocol(weak, Transport::Native, |p| p.cheat_names().len());
        for s in 0..cheat_count {
            let mut cells = Vec::new();
            let mut cheat_name = String::new();
            for n in [60usize, 300, 1200] {
                let mut accepted = 0u64;
                for t in 0..trials {
                    let inst = no_instance(fam, n, t * 37 + n as u64);
                    inst.with_protocol(weak, Transport::Native, |p| {
                        cheat_name = p.cheat_names()[s].clone();
                        if p.run_cheat(s, t).accepted() {
                            accepted += 1;
                        }
                    });
                }
                cells.push(format!("{:.1}%", 100.0 * accepted as f64 / trials as f64));
            }
            rows.push(vec![
                fam.name().to_string(),
                cheat_name,
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    print_table(&headers, &rows);
    println!(
        "\nMost composite cheats trip several independent checks at once, so even\n\
         weakened parameters leave them near 0%. The remaining sections isolate\n\
         single probabilistic events to expose the raw 1/polylog n error.\n"
    );

    // --- E3c: LR-sorting, the pure field-collision events ---
    println!("E3c — LR-sorting cheats at c = 1 (single collision events), 300 trials\n");
    use pdip_graph::gen;
    use pdip_protocols::{LrCheat, LrParams, LrSorting};
    let headers = ["cheat", "n=64", "n=1024", "n=16384"];
    let mut rows = Vec::new();
    for cheat in [LrCheat::ClaimInner, LrCheat::OuterForgedIndex, LrCheat::SwapBlockPositions] {
        let mut cells = vec![format!("{cheat:?}")];
        for n in [64usize, 1024, 16384] {
            let mut accepted = 0u32;
            let mut ran = 0u32;
            for t in 0..300u64 {
                use rand::SeedableRng as _;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(t * 13 + n as u64);
                let Some(no) = gen::lr::random_lr_no(n, n / 3, true, 1, &mut rng) else {
                    continue;
                };
                ran += 1;
                let lr =
                    LrSorting::new(&no, LrParams { c: 1, block_len: None }, Transport::Native);
                if lr.run(Some(cheat), t).accepted() {
                    accepted += 1;
                }
            }
            cells.push(format!("{:.1}%", 100.0 * accepted as f64 / ran.max(1) as f64));
        }
        rows.push(cells);
    }
    print_table(&headers, &rows);
    println!(
        "\nWith c = 1 the collision events survive a visible few percent of runs\n\
         (each cheat also trips auxiliary checks, so rates sit below the raw 1/p).\n\
         The clean single-event decay is isolated in E3d below and in the c-sweep\n\
         of E8b.\n"
    );

    // --- E3d: the spanning-tree prime-collision event ---
    println!("E3d — fake-path with exactly one extra root (Lemma 2.5 event), 300 trials\n");
    use pdip_protocols::{PathOuterplanarity, PopCheat, PopInstance};
    let headers = ["n", "window primes", "predicted 1/#primes", "measured acceptance"];
    let mut rows = Vec::new();
    for n in [64usize, 1024, 16384, 65536] {
        // A path with a single pendant node: outerplanar, no Hamiltonian
        // path, and the greedy fake path misses exactly the pendant.
        let mut g = pdip_graph::Graph::from_edges(n - 1, (0..n - 2).map(|i| (i, i + 1)));
        let pend = g.add_node();
        g.add_edge(n / 2, pend);
        let inst = PopInstance { graph: g, witness: None, is_yes: false };
        let params = PopParams { c: 2, st_repetitions: 1 };
        let p = PathOuterplanarity::new(&inst, params, Transport::Native);
        let mut accepted = 0u32;
        for t in 0..300u64 {
            if p.run(Some(PopCheat::FakePath), t).accepted() {
                accepted += 1;
            }
        }
        let st = pdip_protocols::SpanningTreeVerification::new(
            pdip_protocols::StParams::for_n(n, 2, 1),
        );
        let primes = st.primes().len();
        rows.push(vec![
            n.to_string(),
            primes.to_string(),
            format!("{:.1}%", 100.0 / primes as f64),
            format!("{:.1}%", 100.0 * accepted as f64 / 300.0),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nThe measured acceptance matches the predicted prime-collision probability\n\
         and shrinks as the window (log^c n) grows — the 1/polylog n error, live."
    );
}
