//! E2 — rounds and perfect completeness.
//!
//! Theorems 1.2–1.7 claim 5 interaction rounds and perfect completeness.
//! This binary runs every protocol on a suite of yes-instances across
//! sizes and seeds and reports acceptance counts (must be 100%) and round
//! counts (must be 5; the PLS baseline is 1).

use pdip_bench::{print_table, YesInstance, FAMILIES};
use pdip_protocols::{PopParams, Transport};

fn main() {
    let sizes = [32usize, 128, 512, 2048];
    let seeds_per_size = 8u64;
    println!("E2 — rounds and perfect completeness (honest prover)\n");
    let headers = ["protocol", "rounds", "runs", "accepted", "rate"];
    let mut rows = Vec::new();
    for fam in FAMILIES {
        let mut runs = 0u64;
        let mut accepted = 0u64;
        let mut rounds = 0usize;
        for &n in &sizes {
            for seed in 0..seeds_per_size {
                let inst = YesInstance::generate(fam, n, seed * 7919 + n as u64);
                inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                    rounds = p.rounds();
                    runs += 1;
                    if p.run_honest(seed).accepted() {
                        accepted += 1;
                    }
                });
            }
        }
        rows.push(vec![
            fam.name().to_string(),
            rounds.to_string(),
            runs.to_string(),
            accepted.to_string(),
            format!("{:.1}%", 100.0 * accepted as f64 / runs as f64),
        ]);
        assert_eq!(runs, accepted, "completeness violated for {}", fam.name());
    }
    print_table(&headers, &rows);
    println!("\nEvery rate must read 100.0% — the theorems claim perfect completeness.");
}
