//! E2 — rounds and perfect completeness.
//!
//! Theorems 1.2–1.7 claim 5 interaction rounds and perfect completeness.
//! This binary runs every protocol on a suite of yes-instances across
//! sizes and seeds and reports acceptance counts (must be 100%) and round
//! counts (must be 5; the PLS baseline is 1).
//!
//! The grid executes on the `pdip-engine` worker pool (`--threads N`);
//! the legacy per-cell seed formulas are reproduced via
//! [`SeedMode::Explicit`], so the table matches the historical serial
//! output byte for byte.

use pdip_bench::{reporter_from_args, threads_flag, FAMILIES};
use pdip_engine::{Engine, JobCoords, ProverSpec, SeedMode, SweepSpec};

/// The historical E2 seeds: instances from `seed * 7919 + n`, runs from
/// the per-size seed index (here the engine trial number).
fn e2_seeds(c: &JobCoords) -> (u64, u64) {
    (c.trial * 7919 + c.n as u64, c.trial)
}

fn main() {
    let sizes = [32usize, 128, 512, 2048];
    let seeds_per_size = 8u64;
    let mut rep = reporter_from_args();
    rep.line("E2 — rounds and perfect completeness (honest prover)\n");

    let spec = SweepSpec {
        families: FAMILIES.to_vec(),
        sizes: sizes.to_vec(),
        provers: vec![ProverSpec::Honest],
        trials: seeds_per_size,
        seeds: SeedMode::Explicit(e2_seeds),
        ..SweepSpec::default()
    };
    let outcome = Engine::with_threads(threads_flag()).run(&spec);
    assert!(outcome.failures.is_empty(), "E2 jobs must not panic: {:?}", outcome.failures);

    let headers = ["protocol", "rounds", "runs", "accepted", "rate"];
    let mut rows = Vec::new();
    for fam in FAMILIES {
        let mut runs = 0u64;
        let mut accepted = 0u64;
        let mut rounds = 0usize;
        for r in outcome.records.iter().filter(|r| r.family == fam) {
            rounds = r.rounds;
            runs += 1;
            if r.accepted {
                accepted += 1;
            }
        }
        rows.push(vec![
            fam.name().to_string(),
            rounds.to_string(),
            runs.to_string(),
            accepted.to_string(),
            format!("{:.1}%", 100.0 * accepted as f64 / runs as f64),
        ]);
        assert_eq!(runs, accepted, "completeness violated for {}", fam.name());
    }
    rep.table(&headers, &rows);
    rep.line("\nEvery rate must read 100.0% — the theorems claim perfect completeness.\n");
    rep.summary(&outcome.metrics);
}
