//! E6 — the Δ-dependence of the planarity proof (Theorem 1.5).
//!
//! The planarity protocol pays O(log log n + log Δ): the rotation values
//! (ρ_u(e), ρ_v(e)) cost O(log Δ) bits in the first prover round. The
//! binary sweeps the planted maximum degree at fixed n and the instance
//! size at fixed Δ, reporting the first-round label size and the overall
//! proof size. Embedded planarity (Theorem 1.4, where the rotation is
//! *input*, not proof) is shown for contrast: its size is Δ-independent.

use pdip_bench::print_table;
use pdip_core::DipProtocol;
use pdip_graph::gen::planar::fan_planar;
use pdip_protocols::{EmbInstance, EmbeddedPlanarity, PlInstance, Planarity, PopParams, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("E6 — planarity proof size vs maximum degree Δ (n = 2048)\n");
    let n = 2048;
    let headers = [
        "Δ (planted)",
        "Δ (actual)",
        "planarity round-1 bits",
        "planarity proof bits",
        "embedded round-1 bits",
    ];
    let mut rows = Vec::new();
    for target in [6usize, 16, 64, 256, 1024] {
        let mut rng = SmallRng::seed_from_u64(target as u64);
        // The fan generator pins the maximum degree exactly.
        let gen = fan_planar(n, target, &mut rng);
        let actual = gen.graph.max_degree();
        let pl_inst = PlInstance {
            graph: gen.graph.clone(),
            witness_rho: Some(gen.rho.clone()),
            is_yes: true,
        };
        let pl = Planarity::new(&pl_inst, PopParams::default(), Transport::Native);
        let res = pl.run_honest(3);
        assert!(res.accepted());
        let emb_inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: true };
        let emb = EmbeddedPlanarity::new(&emb_inst, PopParams::default(), Transport::Native);
        let eres = emb.run_honest(3);
        assert!(eres.accepted());
        rows.push(vec![
            target.to_string(),
            actual.to_string(),
            res.stats.per_round_max_bits[0].to_string(),
            res.stats.proof_size().to_string(),
            eres.stats.per_round_max_bits[0].to_string(),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nShape check: the planarity round-1 column climbs by ~2 bits per doubling\n\
         of Δ (the 2·log Δ rotation pair); the embedded-planarity column is flat.\n\
         The overall proof size is dominated by the O(log log n) rounds until\n\
         log Δ overtakes them — exactly the open question 1 regime of the paper."
    );
}
