//! E1 — proof size vs n: the headline comparison of the paper.
//!
//! Theorems 1.2–1.7 claim O(log log n)-bit interactive proofs (plus
//! O(log Δ) for planarity), against the Θ(log n)-bit one-round PLS state
//! of the art (FFM+21). This binary measures the honest prover's longest
//! label across all six families and the PLS baselines over a sweep of n.
//!
//! The family sweep executes on the `pdip-engine` worker pool
//! (`--threads N`; deterministic at any worker count). The legacy seed
//! formulas are kept, so the table matches the historical serial output.

use pdip_bench::{reporter_from_args, threads_flag, FAMILIES};
use pdip_engine::{Engine, JobCoords, ProverSpec, SeedMode, SweepSpec};
use pdip_protocols::pls_baseline;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The historical E1 seeds: instances from `11 + n`, runs from `5`.
fn e1_seeds(c: &JobCoords) -> (u64, u64) {
    (11 + c.n as u64, 5)
}

fn main() {
    let sizes: Vec<usize> = (8..=16).step_by(2).map(|k| 1usize << k).collect();
    let mut rep = reporter_from_args();
    rep.line("E1 — proof size (bits of the longest honest label) vs n\n");

    let spec = SweepSpec {
        families: FAMILIES.to_vec(),
        sizes: sizes.clone(),
        provers: vec![ProverSpec::Honest],
        trials: 1,
        seeds: SeedMode::Explicit(e1_seeds),
        ..SweepSpec::default()
    };
    let outcome = Engine::with_threads(threads_flag()).run(&spec);
    assert!(outcome.failures.is_empty(), "E1 jobs must not panic: {:?}", outcome.failures);
    for r in &outcome.records {
        assert!(r.accepted, "{} n={} rejected an honest run", r.family.name(), r.n);
    }
    let proof_size = |fam, n| {
        outcome
            .records
            .iter()
            .find(|r| r.family == fam && r.n == n)
            .expect("record for every grid cell")
            .proof_size_bits
    };

    let mut headers = vec!["n", "log2 n", "loglog n"];
    for f in FAMILIES {
        headers.push(f.name());
    }
    headers.push("PLS path-op");
    headers.push("PLS embedded");
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![
            n.to_string(),
            format!("{:.0}", (n as f64).log2()),
            format!("{:.2}", (n as f64).log2().log2()),
        ];
        for fam in FAMILIES {
            row.push(proof_size(fam, n).to_string());
        }
        // Baselines (cheap one-shot runs; kept off the engine grid).
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let g = pdip_graph::gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
        let pls = pls_baseline::PlsPathOuterplanar {
            graph: &g.graph,
            witness: Some(&g.path),
            is_yes: true,
        };
        row.push(pls.run().stats.proof_size().to_string());
        let pg = pdip_graph::gen::planar::random_planar(n.min(1 << 13), 0.5, &mut rng);
        let plse =
            pls_baseline::PlsEmbeddedPlanarity { graph: &pg.graph, rho: &pg.rho, is_yes: true };
        row.push(plse.run().stats.proof_size().to_string());
        rows.push(row);
    }
    rep.table(&headers, &rows);
    rep.line(
        "\nShape check: DIP columns grow with loglog n (a few bits per row); the PLS\n\
         columns grow with log n (~9·log n and ~45·log n respectively). With these\n\
         constant factors the absolute crossover sits near n = 2^30; the paper's\n\
         claim is the asymptotic separation, which the slopes show directly.\n\
         The embedded-planarity/planarity columns ride the h(G,T,ρ) simulation\n\
         (x5 per-node copies), and planarity adds its O(log Δ) rotation term.\n",
    );
    rep.summary(&outcome.metrics);
}
