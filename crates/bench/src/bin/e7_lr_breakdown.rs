//! E7 — LR-sorting internals: the per-round communication breakdown.
//!
//! The key technical barrier of the paper (§3, §4) is LR-sorting. This
//! binary dissects the honest run: block length, field sizes, and the
//! bits of each of the three prover rounds, across instance sizes and
//! both edge-label transports (native / simulated via Lemma 2.4).

use pdip_bench::print_table;
use pdip_graph::gen;
use pdip_protocols::{LrParams, LrSorting, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("E7 — LR-sorting per-round breakdown (honest prover)\n");
    let headers = [
        "n",
        "transport",
        "block L",
        "|F_p| bits",
        "|F_p'| bits",
        "P1 bits",
        "P2 bits",
        "P3 bits",
        "proof size",
        "coin bits/node",
    ];
    let mut rows = Vec::new();
    for k in [8usize, 10, 12, 14, 16] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let inst = gen::lr::random_lr_yes(n, n / 3, true, &mut rng);
        for transport in [Transport::Native, Transport::Simulated] {
            let lr = LrSorting::new(&inst, LrParams::default(), transport);
            let res = lr.run(None, 9);
            assert!(res.accepted(), "n = {n}");
            rows.push(vec![
                n.to_string(),
                format!("{transport:?}"),
                lr.block_len.to_string(),
                lr.field_p.element_bits().to_string(),
                lr.field_pp.element_bits().to_string(),
                res.stats.per_round_max_bits[0].to_string(),
                res.stats.per_round_max_bits[1].to_string(),
                res.stats.per_round_max_bits[2].to_string(),
                res.stats.proof_size().to_string(),
                (res.stats.coin_bits / n).to_string(),
            ]);
        }
    }
    print_table(&headers, &rows);
    println!(
        "\nShape check: the block length is ⌈log₂ n⌉; the fields are polylog n, so\n\
         their element widths — and with them every round — grow with log log n.\n\
         The simulated transport adds the constant forest-code overhead of\n\
         Lemma 2.4 to round 1 and folds the per-edge labels into node labels."
    );
}
