//! Shared harness for the experiment binaries (E1–E8) and the criterion
//! benches. Every binary regenerates one evaluation artifact of
//! EXPERIMENTS.md; run them with `cargo run --release -p pdip-bench --bin
//! <name>`.
//!
//! The family/instance machinery and the table printer moved into
//! [`pdip_engine`] (so the batch-verification engine can expand sweep
//! grids without depending on this harness); this crate re-exports them
//! under their historical paths, and E1–E3 now execute their grids on the
//! engine's worker pool.

pub mod graphbench;
pub mod hotpath;
pub mod roundbench;

pub use pdip_engine::{no_instance, print_table, Family, Reporter, YesInstance, FAMILIES};

/// Parses a `--threads N` flag from the binary's argv, defaulting to the
/// machine's available parallelism. Shared by the E1–E3 binaries.
pub fn threads_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// A [`Reporter`] honouring a `--quiet` flag in the binary's argv.
/// Shared by the E1–E3 binaries so their tables and `[engine]` summary
/// lines route through one silenceable sink.
pub fn reporter_from_args() -> Reporter {
    Reporter::from_quiet_flag(std::env::args().any(|a| a == "--quiet"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_protocols::{PopParams, Transport};

    #[test]
    fn yes_instances_exist_for_every_family() {
        for fam in FAMILIES {
            for n in [16usize, 64, 200] {
                let inst = YesInstance::generate(fam, n, 3);
                inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                    assert!(p.is_yes_instance(), "{} n={n}", fam.name());
                    assert!(p.instance_size() > 0);
                    assert_eq!(p.rounds(), 5);
                });
            }
        }
    }

    #[test]
    fn no_instances_are_no_for_every_family() {
        for fam in FAMILIES {
            let inst = no_instance(fam, 80, 7);
            inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                assert!(!p.is_yes_instance(), "{}", fam.name());
                assert!(!p.cheat_names().is_empty());
            });
        }
    }
}
