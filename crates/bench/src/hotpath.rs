//! Hot-path microbenchmarks behind `pdip bench-hotpath` and the
//! `hotpath` criterion bench.
//!
//! Three measurements, each pairing the optimized path against the
//! division-based baseline it replaced:
//!
//! 1. **`field_mul`** — independent pairwise multiplications (the shape
//!    of per-node verifier checks): [`Fp::mul`] (Montgomery) vs
//!    [`Fp::mul_naive`] (`u128 %`).
//! 2. **`multiset_poly_eval`** — the fingerprint `φ_S(z)` over 10⁵
//!    elements: [`multiset_poly_eval`] (drifting-domain batch product)
//!    vs [`multiset_poly_eval_naive`].
//! 3. **`multiset_eq_tree_round`** — a full honest-prover aggregation
//!    over a block path: the one-pass borrowing
//!    [`MultisetEq::honest_response`] vs a reimplementation of the old
//!    shape (per-node multiset clones, naive evaluation, depth-sorted
//!    fold).
//!
//! Everything is deterministic (SplitMix64 inputs, no RNG state shared
//! across entries); only the timings vary run to run. The JSON document
//! written by `pdip bench-hotpath` is described in DESIGN.md §Performance.

use pdip_field::{multiset_poly_eval, multiset_poly_eval_naive, smallest_prime_above, Fp};
use pdip_protocols::multiset_eq::MultisetEq;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark line: the optimized and baseline timings for a job of
/// size `n`.
#[derive(Debug, Clone)]
pub struct HotpathEntry {
    /// Benchmark identifier (stable; keys the JSON document).
    pub name: &'static str,
    /// Problem size (chain length, multiset size, or segment elements).
    pub n: usize,
    /// Nanoseconds per job on the division-based baseline.
    pub baseline_ns: f64,
    /// Nanoseconds per job on the optimized hot path.
    pub fast_ns: f64,
}

impl HotpathEntry {
    /// Baseline time over optimized time.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.fast_ns
    }
}

/// Median-of-samples wall time of `f`, in nanoseconds per call.
///
/// Doubles the iteration count until one sample exceeds `min_time`, then
/// takes the median of several such samples — robust enough for a
/// speedup ratio without criterion's full analysis pass.
pub fn time_ns(min_time: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= min_time {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Deterministic pseudo-random field elements (SplitMix64 stream).
pub fn elements(n: usize, p: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % p
        })
        .collect()
}

/// The old `honest_response` shape: clone each multiset out of the
/// accessor, evaluate with the naive (`u128 %`) path, then fold
/// bottom-up by decreasing depth. Kept here purely as the
/// `multiset_eq_tree_round` baseline.
fn tree_round_legacy(
    f: &Fp,
    parent: &[Option<usize>],
    s1: &dyn Fn(usize) -> Vec<u64>,
    s2: &dyn Fn(usize) -> Vec<u64>,
    z: u64,
) -> (u64, u64) {
    let k = parent.len();
    let mut a1: Vec<u64> = (0..k).map(|i| multiset_poly_eval_naive(f, s1(i), z)).collect();
    let mut a2: Vec<u64> = (0..k).map(|i| multiset_poly_eval_naive(f, s2(i), z)).collect();
    let mut depth = vec![0usize; k];
    for (i, d_out) in depth.iter_mut().enumerate() {
        let mut d = 0;
        let mut cur = i;
        while let Some(p) = parent[cur] {
            d += 1;
            cur = p;
        }
        *d_out = d;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| depth[b].cmp(&depth[a]));
    for &i in &order {
        if let Some(p) = parent[i] {
            a1[p] = f.mul_naive(a1[p], a1[i]);
            a2[p] = f.mul_naive(a2[p], a2[i]);
        }
    }
    (a1[0], a2[0])
}

/// Runs all three paired measurements and returns their entries.
pub fn run_hotpath() -> Vec<HotpathEntry> {
    let p = smallest_prime_above(1 << 20);
    let f = Fp::new(p);
    let budget = Duration::from_millis(30);
    let mut entries = Vec::new();

    // 1. Independent pairwise multiplications (the shape of per-node
    //    verifier checks: no product feeds the next).
    let xs = elements(4096, p, 11);
    let ys = elements(4096, p, 12);
    let each_with = |mul: &dyn Fn(u64, u64) -> u64| {
        let mut acc = 0u64;
        for (&a, &b) in xs.iter().zip(&ys) {
            acc = acc.wrapping_add(mul(black_box(a), black_box(b)));
        }
        black_box(acc)
    };
    entries.push(HotpathEntry {
        name: "field_mul",
        n: xs.len(),
        baseline_ns: time_ns(budget, || {
            each_with(&|a, b| f.mul_naive(a, b));
        }),
        fast_ns: time_ns(budget, || {
            each_with(&|a, b| f.mul(a, b));
        }),
    });

    // 2. The fingerprint φ_S(z) at the acceptance-criterion size 10⁵.
    let s = elements(100_000, p, 13);
    let z = 987_654u64 % p;
    entries.push(HotpathEntry {
        name: "multiset_poly_eval",
        n: s.len(),
        baseline_ns: time_ns(budget, || {
            black_box(multiset_poly_eval_naive(&f, s.iter().copied(), black_box(z)));
        }),
        fast_ns: time_ns(budget, || {
            black_box(multiset_poly_eval(&f, s.iter().copied(), black_box(z)));
        }),
    });

    // 3. A full multiset-equality prover round over a 512-node block path
    //    with 32 elements per node.
    let k = 512usize;
    let per = 32usize;
    let parent: Vec<Option<usize>> =
        (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
    let s1: Vec<Vec<u64>> = (0..k).map(|i| elements(per, p, 1000 + i as u64)).collect();
    let s2: Vec<Vec<u64>> = (0..k).map(|i| elements(per, p, 5000 + i as u64)).collect();
    let ms = MultisetEq::new(f);
    entries.push(HotpathEntry {
        name: "multiset_eq_tree_round",
        n: k * per,
        baseline_ns: time_ns(budget, || {
            black_box(tree_round_legacy(
                &f,
                &parent,
                &|i| s1[i].clone(),
                &|i| s2[i].clone(),
                black_box(z),
            ));
        }),
        fast_ns: time_ns(budget, || {
            black_box(ms.honest_response(
                &parent,
                |i| s1[i].as_slice(),
                |i| s2[i].as_slice(),
                black_box(z),
            ));
        }),
    });

    entries
}

/// Renders the entries as the `results/bench_hotpath.json` document.
pub fn hotpath_json(modulus: u64, entries: &[HotpathEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pdip.bench_hotpath.v1\",");
    let _ = writeln!(s, "  \"modulus\": {modulus},");
    s.push_str("  \"entries\": [\n");
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"baseline_ns\": {:.1}, \
                 \"fast_ns\": {:.1}, \"speedup\": {:.2}}}",
                e.name,
                e.n,
                e.baseline_ns,
                e.fast_ns,
                e.speedup(),
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_tree_round_matches_one_pass() {
        let f = Fp::new(smallest_prime_above(1 << 16));
        let ms = MultisetEq::new(f);
        let k = 17;
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        let s1: Vec<Vec<u64>> = (0..k).map(|i| elements(5, f.modulus(), i as u64)).collect();
        let s2: Vec<Vec<u64>> = (0..k).map(|i| elements(5, f.modulus(), 90 + i as u64)).collect();
        let z = 424_242 % f.modulus();
        let msgs = ms.honest_response(&parent, |i| s1[i].as_slice(), |i| s2[i].as_slice(), z);
        let (a1, a2) = tree_round_legacy(&f, &parent, &|i| s1[i].clone(), &|i| s2[i].clone(), z);
        assert_eq!((msgs[0].a1, msgs[0].a2), (a1, a2));
    }

    #[test]
    fn json_document_shape() {
        let entries =
            vec![HotpathEntry { name: "field_mul", n: 4096, baseline_ns: 200.0, fast_ns: 50.0 }];
        let doc = hotpath_json(101, &entries);
        assert!(doc.contains("\"schema\": \"pdip.bench_hotpath.v1\""));
        assert!(doc.contains("\"speedup\": 4.00"));
        assert!(doc.trim_end().ends_with('}'));
    }
}
