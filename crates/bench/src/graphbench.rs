//! Graph-substrate benchmarks behind `pdip bench-graph` and the
//! `graph_substrate` criterion bench.
//!
//! Five paired measurements over the frozen-CSR graph core, each timing
//! the optimized path against the shape it replaced:
//!
//! 1. **`edge_between_dense`** — `edge_between` on a degree-512 circulant
//!    (both endpoints high-degree, probe at the last port): frozen
//!    sorted-row binary search vs the old port-order linear scan (kept
//!    verbatim as [`NaiveAdjacency::edge_between`]).
//! 2. **`is_planar`** — the left-right planarity test on a warm
//!    [`TraversalScratch`] (reused LR arena) vs a cold scratch per call
//!    (the pre-scratch shape: every traversal buffer allocated fresh).
//! 3. **`biconnected`** — Tarjan's biconnected decomposition, warm vs
//!    cold scratch.
//! 4. **`spanning_forest`** — BFS spanning tree built during traversal on
//!    a warm scratch vs the legacy shape: BFS over `Vec<Vec<_>>`
//!    adjacency into a parent array, then the validating
//!    [`RootedForest::from_parents`] constructor.
//! 5. **`planarity_round`** — one full honest run of the Theorem 1.5
//!    planarity protocol, warm thread scratch vs reset-per-call.
//!
//! Graph-shaped entries run at n ∈ {10³, 10⁴, 10⁵} (`--smoke` restricts
//! to 10³ with a tiny time budget for CI). Inputs are seed-fixed, so only
//! timings vary run to run. The JSON document written by
//! `pdip bench-graph` is described in DESIGN.md §1.1.

use crate::hotpath::HotpathEntry;
use pdip_engine::{Family, YesInstance};
use pdip_graph::gen::planar::random_planar;
use pdip_graph::{
    is_planar_with, reset_thread_scratch, BiconnectedComponents, Graph, NaiveAdjacency, NodeId,
    RootedForest, TraversalScratch,
};
use pdip_protocols::{PopParams, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Knobs for one `bench-graph` run.
#[derive(Debug, Clone)]
pub struct GraphBenchConfig {
    /// Graph sizes for the traversal-shaped entries.
    pub sizes: Vec<usize>,
    /// Minimum wall time per measurement (iteration count doubles until
    /// one sample exceeds it).
    pub budget: Duration,
    /// Timing samples per measurement (the median is reported).
    pub samples: usize,
}

impl GraphBenchConfig {
    /// The full acceptance-criterion grid: n ∈ {10³, 10⁴, 10⁵}.
    pub fn full() -> Self {
        GraphBenchConfig {
            sizes: vec![1_000, 10_000, 100_000],
            budget: Duration::from_millis(20),
            samples: 5,
        }
    }

    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        GraphBenchConfig { sizes: vec![1_000], budget: Duration::from_millis(2), samples: 3 }
    }
}

/// Median-of-`samples` wall time of `f`, in nanoseconds per call
/// (the variable-sample-count sibling of [`crate::hotpath::time_ns`]).
pub fn time_ns_samples(min_time: Duration, samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        if start.elapsed() >= min_time {
            break;
        }
        iters *= 2;
    }
    let mut out: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    out.sort_by(|a, b| a.total_cmp(b));
    out[out.len() / 2]
}

/// A circulant graph: node `i` is adjacent to `i ± 1..=k` (mod `n`), so
/// every node has degree `2k`.
fn circulant(n: usize, k: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in 1..=k {
            let v = (i + j) % n;
            if !g.has_edge(i, v) {
                g.add_edge(i, v);
            }
        }
    }
    g
}

/// The pre-PR spanning-tree shape: BFS over naive `Vec<Vec<_>>` adjacency
/// with freshly allocated visited/parent buffers, then the validating
/// `from_parents` constructor (which re-walks every parent chain).
fn legacy_bfs_forest(g: &Graph, adj: &NaiveAdjacency, root: NodeId) -> RootedForest {
    let n = adj.n();
    let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[root] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &(u, e) in adj.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                parent[u] = Some((v, e));
                queue.push_back(u);
            }
        }
    }
    RootedForest::from_parents(g, parent)
}

/// Runs every paired measurement of the graph-substrate suite.
pub fn run_graphbench(cfg: &GraphBenchConfig) -> Vec<HotpathEntry> {
    let mut entries = Vec::new();

    // 1. edge_between where *both* endpoints are high-degree (a circulant
    //    with degree 512, so neither side offers a short row to scan): the
    //    satellite micro-bench for the O(deg) scan fix. Each probe targets
    //    the last port of the row — the old scan's worst case — and the
    //    frozen path answers it with a binary search over the sorted row.
    let (cn, ck) = (1024usize, 256usize);
    let dense = circulant(cn, ck);
    dense.freeze();
    let naive_dense = NaiveAdjacency::from_graph(&dense);
    entries.push(HotpathEntry {
        name: "edge_between_dense",
        n: cn,
        baseline_ns: time_ns_samples(cfg.budget, cfg.samples, || {
            let mut acc = 0usize;
            for i in 0..cn {
                acc ^= naive_dense.edge_between(i, black_box((i + ck) % cn)).unwrap();
            }
            black_box(acc);
        }),
        fast_ns: time_ns_samples(cfg.budget, cfg.samples, || {
            let mut acc = 0usize;
            for i in 0..cn {
                acc ^= dense.edge_between(i, black_box((i + ck) % cn)).unwrap();
            }
            black_box(acc);
        }),
    });

    for &n in &cfg.sizes {
        // Larger jobs get fewer samples so the 10⁵ rows stay minutes-scale.
        let samples = if n >= 100_000 { cfg.samples.min(2) } else { cfg.samples };
        let mut rng = SmallRng::seed_from_u64(0x6_ea7 + n as u64);
        let inst = random_planar(n, 0.5, &mut rng);
        let g = inst.graph;
        g.freeze();
        let naive = NaiveAdjacency::from_graph(&g);

        // 2. Left-right planarity test: warm arena vs cold scratch.
        let mut warm = TraversalScratch::new();
        entries.push(HotpathEntry {
            name: "is_planar",
            n,
            baseline_ns: time_ns_samples(cfg.budget, samples, || {
                let mut cold = TraversalScratch::new();
                black_box(is_planar_with(&g, &mut cold));
            }),
            fast_ns: time_ns_samples(cfg.budget, samples, || {
                black_box(is_planar_with(&g, &mut warm));
            }),
        });

        // 3. Biconnected decomposition: warm arena vs cold scratch.
        entries.push(HotpathEntry {
            name: "biconnected",
            n,
            baseline_ns: time_ns_samples(cfg.budget, samples, || {
                let mut cold = TraversalScratch::new();
                black_box(BiconnectedComponents::compute_with(&g, &mut cold));
            }),
            fast_ns: time_ns_samples(cfg.budget, samples, || {
                black_box(BiconnectedComponents::compute_with(&g, &mut warm));
            }),
        });

        // 4. BFS spanning tree: built during traversal vs the legacy
        //    allocate-then-validate shape.
        entries.push(HotpathEntry {
            name: "spanning_forest",
            n,
            baseline_ns: time_ns_samples(cfg.budget, samples, || {
                black_box(legacy_bfs_forest(&g, &naive, 0));
            }),
            fast_ns: time_ns_samples(cfg.budget, samples, || {
                black_box(RootedForest::bfs_spanning_tree_with(&g, 0, &mut warm));
            }),
        });

        // 5. One full honest planarity-protocol round on a cached
        //    instance: warm thread scratch vs reset-per-call.
        let yes = YesInstance::generate(Family::Planarity, n, 21);
        let round = || {
            yes.with_protocol(PopParams::default(), Transport::Native, |p| {
                black_box(p.run_honest(5).accepted());
            })
        };
        entries.push(HotpathEntry {
            name: "planarity_round",
            n,
            baseline_ns: time_ns_samples(cfg.budget, samples, || {
                reset_thread_scratch();
                round();
            }),
            fast_ns: time_ns_samples(cfg.budget, samples, round),
        });
    }

    entries
}

/// Renders the entries as the `results/bench_graph.json` document.
pub fn graphbench_json(mode: &str, entries: &[HotpathEntry]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pdip.bench_graph.v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"entries\": [\n");
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"baseline_ns\": {:.1}, \
                 \"fast_ns\": {:.1}, \"speedup\": {:.2}}}",
                e.name,
                e.n,
                e.baseline_ns,
                e.fast_ns,
                e.speedup(),
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Parses a `bench_graph.json` document back into entries, checking the
/// schema tag and every per-entry field. Shared by the freshness test so
/// a committed document that drifts from the writer fails CI.
pub fn parse_graphbench_json(doc: &str) -> Result<Vec<(String, usize, f64, f64)>, String> {
    if !doc.contains("\"schema\": \"pdip.bench_graph.v1\"") {
        return Err("missing or wrong schema tag".into());
    }
    fn field<'a>(row: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let at = row.find(&pat).ok_or_else(|| format!("missing field {key} in {row}"))?;
        let rest = &row[at + pat.len()..];
        let end = rest.find([',', '}']).ok_or_else(|| format!("unterminated {key}"))?;
        Ok(rest[..end].trim())
    }
    let mut out = Vec::new();
    for row in doc.lines().filter(|l| l.trim_start().starts_with('{') && l.contains("\"name\"")) {
        let name = field(row, "name")?.trim_matches('"').to_string();
        let n: usize = field(row, "n")?.parse().map_err(|e| format!("bad n: {e}"))?;
        let base: f64 =
            field(row, "baseline_ns")?.parse().map_err(|e| format!("bad baseline_ns: {e}"))?;
        let fast: f64 = field(row, "fast_ns")?.parse().map_err(|e| format!("bad fast_ns: {e}"))?;
        let speedup: f64 =
            field(row, "speedup")?.parse().map_err(|e| format!("bad speedup: {e}"))?;
        if base <= 0.0 || fast <= 0.0 {
            return Err(format!("non-positive timing in entry {name}"));
        }
        if (speedup - base / fast).abs() > 0.011 * speedup.max(1.0) {
            return Err(format!("speedup field inconsistent in entry {name}"));
        }
        out.push((name, n, base, fast));
    }
    if out.is_empty() {
        return Err("no entries".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_forest_matches_scratch_forest() {
        let mut rng = SmallRng::seed_from_u64(3);
        let inst = random_planar(120, 0.4, &mut rng);
        let naive = NaiveAdjacency::from_graph(&inst.graph);
        let legacy = legacy_bfs_forest(&inst.graph, &naive, 0);
        let fast = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        assert_eq!(legacy.roots(), fast.roots());
        for v in 0..inst.graph.n() {
            assert_eq!(legacy.parent(v), fast.parent(v), "parent of {v}");
            assert_eq!(legacy.parent_edge(v), fast.parent_edge(v), "parent edge of {v}");
            assert_eq!(legacy.depth(v), fast.depth(v), "depth of {v}");
            assert_eq!(legacy.children(v), fast.children(v), "children of {v}");
        }
    }

    #[test]
    fn smoke_run_produces_all_benchmarks() {
        let cfg =
            GraphBenchConfig { sizes: vec![64], budget: Duration::from_micros(50), samples: 1 };
        let entries = run_graphbench(&cfg);
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        for want in
            ["edge_between_dense", "is_planar", "biconnected", "spanning_forest", "planarity_round"]
        {
            assert!(names.contains(&want), "missing {want}");
        }
        assert!(entries.iter().all(|e| e.baseline_ns > 0.0 && e.fast_ns > 0.0));
    }

    #[test]
    fn json_document_roundtrips_through_parser() {
        let entries = vec![
            HotpathEntry {
                name: "edge_between_dense",
                n: 1024,
                baseline_ns: 9000.0,
                fast_ns: 450.0,
            },
            HotpathEntry { name: "is_planar", n: 1000, baseline_ns: 100.0, fast_ns: 80.0 },
        ];
        let doc = graphbench_json("full", &entries);
        let parsed = parse_graphbench_json(&doc).expect("writer output must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "edge_between_dense");
        assert_eq!(parsed[0].1, 1024);
        assert!(parse_graphbench_json("{}").is_err());
        assert!(parse_graphbench_json(&doc.replace("1024", "x")).is_err());
    }
}
