//! Per-stage profiler for one full planarity round — `pdip bench-round`.
//!
//! One honest run of the Theorem 1.5 planarity protocol passes through
//! four conceptual stages: the LR-orientation machinery (rotation check,
//! spanning tree, reduction, orientation build), per-node label
//! construction (forest code, LR round-1 labels), the commitment /
//! multiset passes (LR rounds 2–3 and the per-node decision sweep), and
//! transcript assembly (capture + size accounting). Every stage carries
//! a [`Stopwatch`] duration mark (names `round/*`); this module runs the
//! round under a duration-summing recorder and reports both
//!
//! * **entries** — total wall time per round at each n, paired with the
//!   pre-optimization baseline recorded in [`COMMITTED_BASELINE_NS`], and
//! * **stages** — the per-stage breakdown (total ns and share of the
//!   tracked time) at each n.
//!
//! Durations are histogram/timing data: they never enter the
//! deterministic event stream, so profiling a round cannot perturb any
//! committed artifact (see the `pdip-obs` determinism rules). The JSON
//! document written by `pdip bench-round` uses schema
//! `pdip.bench_round.v1` and is freshness-guarded by
//! `tests/bench_round_freshness.rs`.

use crate::graphbench::time_ns_samples;
use crate::hotpath::HotpathEntry;
use pdip_engine::{Family, YesInstance};
use pdip_obs::Recorder;
use pdip_protocols::{PopParams, Transport};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Duration;

/// Wall time of one full honest `planarity_round` per size, measured by
/// this harness **before** the round optimizations of the
/// intra-job-parallelism / lane-batching / zero-copy-labels PR (commit
/// e9e126a, same instance seed 21, same median-of-samples methodology).
/// These are the committed "before" numbers the freshness guard holds the
/// optimized "after" timings against.
pub const COMMITTED_BASELINE_NS: [(usize, f64); 3] =
    [(1_000, 17_197_218.0), (10_000, 200_045_021.0), (100_000, 2_376_165_016.0)];

/// The committed baseline for size `n`, if the grid covers it.
pub fn committed_baseline_ns(n: usize) -> Option<f64> {
    COMMITTED_BASELINE_NS.iter().find(|&&(bn, _)| bn == n).map(|&(_, ns)| ns)
}

/// The stage names every full round passes through, in round order.
pub const ROUND_STAGES: [&str; 13] = [
    "round/rotation",
    "round/instance-prep",
    "round/spanning-tree",
    "round/reduction",
    "round/path-commit",
    "round/lr-orientation",
    "round/nesting",
    "round/lr-coins",
    "round/lr-labels",
    "round/lr-commit",
    "round/lr-msets",
    "round/transcript",
    "round/lr-decide",
];

/// One row of the per-stage breakdown table.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stopwatch name (`round/...`).
    pub stage: &'static str,
    /// Instance size.
    pub n: usize,
    /// Total nanoseconds spent in the stage over the profiled runs,
    /// divided by the number of runs.
    pub total_ns: f64,
    /// Fraction of the tracked round time.
    pub share: f64,
}

/// Knobs for one `bench-round` run.
#[derive(Debug, Clone)]
pub struct RoundBenchConfig {
    /// Instance sizes.
    pub sizes: Vec<usize>,
    /// Minimum wall time per total-round measurement.
    pub budget: Duration,
    /// Timing samples per measurement (median reported).
    pub samples: usize,
    /// Profiled runs per size for the stage breakdown (averaged).
    pub profile_runs: usize,
}

impl RoundBenchConfig {
    /// The acceptance-criterion grid: n ∈ {10³, 10⁴, 10⁵}.
    pub fn full() -> Self {
        RoundBenchConfig {
            sizes: vec![1_000, 10_000, 100_000],
            budget: Duration::from_millis(20),
            samples: 5,
            profile_runs: 3,
        }
    }

    /// A seconds-scale configuration for CI smoke runs.
    pub fn smoke() -> Self {
        RoundBenchConfig {
            sizes: vec![1_000],
            budget: Duration::from_millis(2),
            samples: 3,
            profile_runs: 1,
        }
    }
}

/// A [`Recorder`] that sums [`Recorder::duration`] observations per name.
/// Events and spans are discarded — only the stopwatch totals matter to
/// the profiler.
#[derive(Debug, Default)]
pub struct StageRecorder {
    totals: Mutex<Vec<(&'static str, u64, u128)>>,
}

impl StageRecorder {
    /// A fresh recorder with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(count, total nanoseconds)` observed under `name`.
    pub fn total(&self, name: &str) -> (u64, u128) {
        let totals = self.totals.lock().unwrap_or_else(|e| e.into_inner());
        totals.iter().find(|(s, _, _)| *s == name).map(|&(_, c, t)| (c, t)).unwrap_or((0, 0))
    }
}

impl Recorder for StageRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        let mut totals = self.totals.lock().unwrap_or_else(|e| e.into_inner());
        match totals.iter_mut().find(|(s, _, _)| *s == name) {
            Some((_, c, t)) => {
                *c += 1;
                *t += u128::from(nanos);
            }
            None => totals.push((name, 1, u128::from(nanos))),
        }
    }
}

/// The full profiler output for one configuration.
#[derive(Debug, Clone)]
pub struct RoundBenchReport {
    /// Whole-round timings vs the committed baseline, one per size.
    pub entries: Vec<HotpathEntry>,
    /// Per-stage breakdown rows, grouped by size in grid order.
    pub stages: Vec<StageRow>,
}

/// Runs the profiler: total round wall time (median of samples on a warm
/// scratch) plus the per-stage stopwatch breakdown, per size.
pub fn run_roundbench(cfg: &RoundBenchConfig) -> RoundBenchReport {
    let mut entries = Vec::new();
    let mut stages = Vec::new();
    for &n in &cfg.sizes {
        // Larger sizes get fewer samples, mirroring bench-graph.
        let samples = if n >= 100_000 { cfg.samples.min(2) } else { cfg.samples };
        let yes = YesInstance::generate(Family::Planarity, n, 21);
        let round = || {
            yes.with_protocol(PopParams::default(), Transport::Native, |p| {
                black_box(p.run_honest(5).accepted());
            })
        };
        let fast_ns = time_ns_samples(cfg.budget, samples, round);
        let baseline_ns = committed_baseline_ns(n).unwrap_or(fast_ns);
        entries.push(HotpathEntry { name: "planarity_round", n, baseline_ns, fast_ns });

        // Stage breakdown: run under the summing recorder and average.
        let rec = StageRecorder::new();
        let runs = cfg.profile_runs.max(1);
        for _ in 0..runs {
            yes.with_protocol(PopParams::default(), Transport::Native, |p| {
                black_box(p.run_honest_traced(5, &rec).accepted());
            });
        }
        let totals: Vec<(&'static str, f64)> =
            ROUND_STAGES.iter().map(|&s| (s, rec.total(s).1 as f64 / runs as f64)).collect();
        let tracked: f64 = totals.iter().map(|&(_, t)| t).sum();
        for (stage, total_ns) in totals {
            let share = if tracked > 0.0 { total_ns / tracked } else { 0.0 };
            stages.push(StageRow { stage, n, total_ns, share });
        }
    }
    RoundBenchReport { entries, stages }
}

/// Renders the report as the `results/bench_round.json` document.
pub fn roundbench_json(mode: &str, report: &RoundBenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"pdip.bench_round.v1\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"entries\": [\n");
    let rows: Vec<String> = report
        .entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"n\": {}, \"baseline_ns\": {:.1}, \
                 \"fast_ns\": {:.1}, \"speedup\": {:.2}}}",
                e.name,
                e.n,
                e.baseline_ns,
                e.fast_ns,
                e.speedup(),
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ],\n  \"stages\": [\n");
    let rows: Vec<String> = report
        .stages
        .iter()
        .map(|r| {
            format!(
                "    {{\"stage\": \"{}\", \"n\": {}, \"total_ns\": {:.1}, \"share\": {:.4}}}",
                r.stage, r.n, r.total_ns, r.share,
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// A parsed `bench_round.json` document.
#[derive(Debug, Clone)]
pub struct ParsedRoundBench {
    /// Document mode (`full` or `smoke`).
    pub mode: String,
    /// `(name, n, baseline_ns, fast_ns)` per entry row.
    pub entries: Vec<(String, usize, f64, f64)>,
    /// `(stage, n, total_ns, share)` per stage row.
    pub stages: Vec<(String, usize, f64, f64)>,
}

/// Parses a `bench_round.json` document, checking the schema tag and all
/// per-row fields. Shared by the freshness guard so a committed document
/// that drifts from the writer fails CI.
pub fn parse_roundbench_json(doc: &str) -> Result<ParsedRoundBench, String> {
    if !doc.contains("\"schema\": \"pdip.bench_round.v1\"") {
        return Err("missing or wrong schema tag".into());
    }
    fn field<'a>(row: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\": ");
        let at = row.find(&pat).ok_or_else(|| format!("missing field {key} in {row}"))?;
        let rest = &row[at + pat.len()..];
        let end = rest.find([',', '}']).ok_or_else(|| format!("unterminated {key}"))?;
        Ok(rest[..end].trim())
    }
    let mode = doc
        .lines()
        .find(|l| l.contains("\"mode\": "))
        .and_then(|l| field(l, "mode").ok())
        .map(|m| m.trim_matches(['"', ','].as_ref()).to_string())
        .ok_or("missing mode")?;
    let mut entries = Vec::new();
    let mut stages = Vec::new();
    for row in doc.lines().map(str::trim_start).filter(|l| l.starts_with('{')) {
        if row.contains("\"name\"") {
            let name = field(row, "name")?.trim_matches('"').to_string();
            let n: usize = field(row, "n")?.parse().map_err(|e| format!("bad n: {e}"))?;
            let base: f64 =
                field(row, "baseline_ns")?.parse().map_err(|e| format!("bad baseline_ns: {e}"))?;
            let fast: f64 =
                field(row, "fast_ns")?.parse().map_err(|e| format!("bad fast_ns: {e}"))?;
            let speedup: f64 =
                field(row, "speedup")?.parse().map_err(|e| format!("bad speedup: {e}"))?;
            if base <= 0.0 || fast <= 0.0 {
                return Err(format!("non-positive timing in entry {name} n={n}"));
            }
            if (speedup - base / fast).abs() > 0.011 * speedup.max(1.0) {
                return Err(format!("speedup field inconsistent in entry {name} n={n}"));
            }
            entries.push((name, n, base, fast));
        } else if row.contains("\"stage\"") {
            let stage = field(row, "stage")?.trim_matches('"').to_string();
            let n: usize = field(row, "n")?.parse().map_err(|e| format!("bad n: {e}"))?;
            let total: f64 =
                field(row, "total_ns")?.parse().map_err(|e| format!("bad total_ns: {e}"))?;
            let share: f64 = field(row, "share")?.parse().map_err(|e| format!("bad share: {e}"))?;
            if !(0.0..=1.0).contains(&share) {
                return Err(format!("share out of range in stage {stage} n={n}"));
            }
            stages.push((stage, n, total, share));
        }
    }
    if entries.is_empty() {
        return Err("no entries".into());
    }
    if stages.is_empty() {
        return Err("no stage rows".into());
    }
    Ok(ParsedRoundBench { mode, entries, stages })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_captures_every_stage() {
        let cfg = RoundBenchConfig {
            sizes: vec![256],
            budget: Duration::from_micros(50),
            samples: 1,
            profile_runs: 1,
        };
        let report = run_roundbench(&cfg);
        assert_eq!(report.entries.len(), 1);
        assert!(report.entries[0].fast_ns > 0.0);
        assert_eq!(report.stages.len(), ROUND_STAGES.len());
        let tracked: f64 = report.stages.iter().map(|r| r.total_ns).sum();
        assert!(tracked > 0.0, "no stage time recorded");
        let share_sum: f64 = report.stages.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-6, "shares must sum to 1: {share_sum}");
    }

    #[test]
    fn json_document_roundtrips_through_parser() {
        let report = RoundBenchReport {
            entries: vec![HotpathEntry {
                name: "planarity_round",
                n: 1000,
                baseline_ns: 5000.0,
                fast_ns: 1000.0,
            }],
            stages: vec![
                StageRow { stage: "round/lr-commit", n: 1000, total_ns: 800.0, share: 0.8 },
                StageRow { stage: "round/lr-decide", n: 1000, total_ns: 200.0, share: 0.2 },
            ],
        };
        let doc = roundbench_json("full", &report);
        let parsed = parse_roundbench_json(&doc).expect("writer output must parse");
        assert_eq!(parsed.mode, "full");
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].1, 1000);
        assert_eq!(parsed.stages.len(), 2);
        assert!(parse_roundbench_json("{}").is_err());
        assert!(parse_roundbench_json(&doc.replace("0.8", "8.0")).is_err());
    }

    #[test]
    fn committed_baseline_covers_the_full_grid() {
        for n in RoundBenchConfig::full().sizes {
            assert!(committed_baseline_ns(n).is_some(), "no committed baseline for n={n}");
        }
    }
}
