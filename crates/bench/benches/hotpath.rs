//! Criterion benches for the arithmetic hot paths: Montgomery vs naive
//! field multiplication, the batched fingerprint `φ_S(z)`, and a full
//! multiset-equality prover round. The paired `pdip bench-hotpath`
//! subcommand measures the same jobs and writes the committed
//! `results/bench_hotpath.json` snapshot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pdip_bench::hotpath::elements;
use pdip_field::{multiset_poly_eval, multiset_poly_eval_naive, smallest_prime_above, Fp};
use pdip_protocols::multiset_eq::MultisetEq;

fn bench_field_mul(c: &mut Criterion) {
    let f = Fp::new(smallest_prime_above(1 << 20));
    let xs = elements(4096, f.modulus(), 11);
    let ys = elements(4096, f.modulus(), 12);
    let mut g = c.benchmark_group("field_mul");
    g.bench_function("montgomery", |b| {
        b.iter(|| {
            xs.iter()
                .zip(&ys)
                .fold(0u64, |acc, (&x, &y)| acc.wrapping_add(f.mul(black_box(x), black_box(y))))
        })
    });
    g.bench_function("naive", |b| {
        b.iter(|| {
            xs.iter().zip(&ys).fold(0u64, |acc, (&x, &y)| {
                acc.wrapping_add(f.mul_naive(black_box(x), black_box(y)))
            })
        })
    });
    g.finish();
}

fn bench_multiset_poly_eval(c: &mut Criterion) {
    let f = Fp::new(smallest_prime_above(1 << 20));
    let s = elements(100_000, f.modulus(), 13);
    let z = 987_654u64 % f.modulus();
    let mut g = c.benchmark_group("multiset_poly_eval_1e5");
    g.sample_size(20);
    g.bench_function("batched", |b| {
        b.iter(|| multiset_poly_eval(&f, s.iter().copied(), black_box(z)))
    });
    g.bench_function("naive", |b| {
        b.iter(|| multiset_poly_eval_naive(&f, s.iter().copied(), black_box(z)))
    });
    g.finish();
}

fn bench_multiset_eq_round(c: &mut Criterion) {
    let f = Fp::new(smallest_prime_above(1 << 20));
    let ms = MultisetEq::new(f);
    let k = 512usize;
    let parent: Vec<Option<usize>> =
        (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
    let s1: Vec<Vec<u64>> = (0..k).map(|i| elements(32, f.modulus(), 1000 + i as u64)).collect();
    let s2: Vec<Vec<u64>> = (0..k).map(|i| elements(32, f.modulus(), 5000 + i as u64)).collect();
    let z = 424_242u64 % f.modulus();
    let mut g = c.benchmark_group("multiset_eq_tree_round");
    g.sample_size(20);
    g.bench_function("one_pass", |b| {
        b.iter(|| {
            ms.honest_response(&parent, |i| s1[i].as_slice(), |i| s2[i].as_slice(), black_box(z))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_field_mul, bench_multiset_poly_eval, bench_multiset_eq_round);
criterion_main!(benches);
