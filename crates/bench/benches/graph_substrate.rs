//! Criterion timings of the frozen-CSR graph core: warm-scratch hot paths
//! against the shapes they replaced. The `pdip bench-graph` subcommand
//! runs the same paired measurements without criterion's analysis pass
//! and snapshots them to `results/bench_graph.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdip_graph::gen;
use pdip_graph::{
    is_planar_with, BiconnectedComponents, Graph, NaiveAdjacency, RootedForest, TraversalScratch,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_edge_between(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge-between-dense");
    // A circulant where every node has degree 512, probed at the last
    // port of the row: the old linear scan's worst case.
    let (n, k) = (1024usize, 256usize);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in 1..=k {
            let v = (i + j) % n;
            if !g.has_edge(i, v) {
                g.add_edge(i, v);
            }
        }
    }
    g.freeze();
    let naive = NaiveAdjacency::from_graph(&g);
    group.bench_function(BenchmarkId::new("linear-scan", 2 * k), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..n {
                acc ^= naive.edge_between(i, black_box((i + k) % n)).unwrap();
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("binary-search", 2 * k), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..n {
                acc ^= g.edge_between(i, black_box((i + k) % n)).unwrap();
            }
            acc
        })
    });
    group.finish();
}

fn bench_traversals(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm-scratch-traversals");
    for k in [10usize, 13] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let g = gen::planar::random_planar(n, 0.5, &mut rng).graph;
        g.freeze();
        let mut warm = TraversalScratch::new();
        group.bench_with_input(BenchmarkId::new("is-planar-cold", n), &g, |b, g| {
            b.iter(|| {
                let mut cold = TraversalScratch::new();
                assert!(is_planar_with(g, &mut cold));
            })
        });
        group.bench_with_input(BenchmarkId::new("is-planar-warm", n), &g, |b, g| {
            b.iter(|| assert!(is_planar_with(g, &mut warm)))
        });
        group.bench_with_input(BenchmarkId::new("biconnected-warm", n), &g, |b, g| {
            b.iter(|| black_box(BiconnectedComponents::compute_with(g, &mut warm)))
        });
        group.bench_with_input(BenchmarkId::new("spanning-forest-warm", n), &g, |b, g| {
            b.iter(|| black_box(RootedForest::bfs_spanning_tree_with(g, 0, &mut warm)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edge_between, bench_traversals);
criterion_main!(benches);
