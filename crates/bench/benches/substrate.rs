//! Criterion timings of the graph substrate: the algorithms every honest
//! prover and recognizer relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdip_graph::gen;
use pdip_graph::{is_planar, is_series_parallel, outer_cycle, sp_tree, RootedForest};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_planarity_test(c: &mut Criterion) {
    let mut group = c.benchmark_group("left-right-planarity-test");
    for k in [10usize, 12, 14] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let yes = gen::planar::random_triangulation(n, &mut rng).graph;
        let no = gen::no_instances::nonplanar_with_gadget(n, 1, true, &mut rng);
        group.bench_with_input(BenchmarkId::new("planar", n), &yes, |b, g| {
            b.iter(|| assert!(is_planar(g)))
        });
        group.bench_with_input(BenchmarkId::new("nonplanar", n), &no, |b, g| {
            b.iter(|| assert!(!is_planar(g)))
        });
    }
    group.finish();
}

fn bench_sp_recognition(c: &mut Criterion) {
    let mut group = c.benchmark_group("series-parallel-recognition");
    for k in [8usize, 10, 12] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let g = gen::sp::random_series_parallel(n, &mut rng).graph;
        group.bench_with_input(BenchmarkId::new("sp-tree", g.m()), &g, |b, g| {
            b.iter(|| assert!(sp_tree(g).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("recognize", g.m()), &g, |b, g| {
            b.iter(|| assert!(is_series_parallel(g)))
        });
    }
    group.finish();
}

fn bench_outer_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("outerplanar-outer-cycle");
    for k in [8usize, 10] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        // A single biconnected outerplanar block: polygon + laminar chords.
        let mut g = pdip_graph::Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
        let mut arcs = Vec::new();
        gen::laminar_arcs(0, n - 1, 0.4, &mut rng, &mut arcs);
        for (a, b) in arcs {
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| assert!(outer_cycle(g).is_some()))
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance-generation");
    group.bench_function("triangulation-4096", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| gen::planar::random_triangulation(4096, &mut rng))
    });
    group.bench_function("path-outerplanar-4096", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| gen::outerplanar::random_path_outerplanar(4096, 0.6, &mut rng))
    });
    group.bench_function("spanning-tree-4096", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::planar::random_planar(4096, 0.5, &mut rng).graph;
        b.iter(|| RootedForest::bfs_spanning_tree(&g, 0))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_planarity_test,
    bench_sp_recognition,
    bench_outer_cycle,
    bench_generators
);
criterion_main!(benches);
