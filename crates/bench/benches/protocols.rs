//! Criterion timings of full protocol runs (prover + all node verifiers):
//! near-linear scaling in n for every theorem protocol and the baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdip_bench::{Family, YesInstance};
use pdip_graph::gen;
use pdip_protocols::{pls_baseline, LrParams, LrSorting, PopParams, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_lr_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("lr-sorting-run");
    group.sample_size(20);
    for k in [8usize, 10, 12] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let inst = gen::lr::random_lr_yes(n, n / 3, true, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let lr = LrSorting::new(inst, LrParams::default(), Transport::Native);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                assert!(lr.run(None, seed).accepted())
            })
        });
    }
    group.finish();
}

fn bench_theorem_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem-protocol-run-n1024");
    group.sample_size(10);
    for fam in [
        Family::PathOuterplanar,
        Family::Outerplanar,
        Family::EmbeddedPlanarity,
        Family::Planarity,
        Family::SeriesParallel,
        Family::Treewidth2,
    ] {
        let inst = YesInstance::generate(fam, 1024, 77);
        group.bench_function(fam.name(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                    assert!(p.run_honest(seed).accepted())
                })
            })
        });
    }
    group.finish();
}

/// One full honest planarity round (Theorem 1.5 protocol) at n = 10^4:
/// the round that ISSUE 7's intra-job parallelism, lane-batched LR
/// commitments and arena-backed labels attack. Kept as a single-size
/// micro-bench so regressions in the round show up next to the substrate
/// benches without the minutes-scale 10^5 grid of `pdip bench-round`.
fn bench_planarity_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("planarity-round-honest");
    group.sample_size(10);
    let n = 10_000usize;
    let inst = YesInstance::generate(Family::Planarity, n, 21);
    group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                assert!(p.run_honest(seed).accepted())
            })
        })
    });
    group.finish();
}

fn bench_pls_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pls-baseline-run");
    group.sample_size(20);
    for k in [10usize, 12, 14] {
        let n = 1usize << k;
        let mut rng = SmallRng::seed_from_u64(k as u64);
        let g = gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let pls = pls_baseline::PlsPathOuterplanar {
                graph: &g.graph,
                witness: Some(&g.path),
                is_yes: true,
            };
            b.iter(|| assert!(pls.run().accepted()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lr_sorting,
    bench_theorem_protocols,
    bench_planarity_round,
    bench_pls_baseline
);
criterion_main!(benches);
