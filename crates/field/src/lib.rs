//! Prime fields, prime windows and multiset polynomials.
//!
//! The paper's protocols compare multisets by polynomial identity testing
//! over a prime field 𝔽_p (Lemma 2.6): a multiset `S` is encoded as the
//! polynomial `φ_S(x) = ∏_{s ∈ S} (s − x)`, two multisets are equal iff
//! their polynomials agree, and evaluating at a random point catches
//! inequality with probability `1 − |S|/p`. The LR-sorting protocol (§4)
//! additionally evaluates prefix polynomials of block-position bitstrings,
//! and the spanning-tree verification of this reproduction samples a random
//! prime from a `polylog n` window.
//!
//! All arithmetic is over `u64` moduli with `u128` intermediate products —
//! exact for every prime below 2⁶⁴. Multiplication is division-free for
//! every odd prime below 2⁶³ through a precomputed Montgomery context
//! (see [`Fp`] and the batch entry points [`Fp::mul_many`] /
//! [`Fp::product_accumulate`]); the naive `u128 %` path survives as the
//! differential-testing baseline ([`Fp::mul_naive`],
//! [`multiset_poly_eval_naive`]).

#![warn(missing_docs)]
// Parallel-array index loops are idiomatic throughout this codebase.
#![allow(clippy::needless_range_loop)]

pub mod field;
pub mod poly;
pub mod primes;

pub use field::Fp;
pub use poly::{multiset_poly_eval, multiset_poly_eval_naive, prefix_poly_evals};
pub use primes::{is_prime, next_prime, primes_in_window, smallest_prime_above};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn multiset_equality_via_pit() {
        let p = smallest_prime_above(1 << 20);
        let f = Fp::new(p);
        let s1 = [3u64, 7, 7, 11];
        let s2 = [7u64, 11, 3, 7];
        let s3 = [3u64, 7, 11, 11];
        // Equal multisets agree at every point; unequal multisets disagree
        // at all but at most |S| points.
        let mut disagreements = 0;
        for z in 0..200u64 {
            let a = multiset_poly_eval(&f, s1.iter().copied(), z);
            let b = multiset_poly_eval(&f, s2.iter().copied(), z);
            let c = multiset_poly_eval(&f, s3.iter().copied(), z);
            assert_eq!(a, b);
            if a != c {
                disagreements += 1;
            }
        }
        assert!(disagreements >= 196); // degree-4 polynomials
    }
}
