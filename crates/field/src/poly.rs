//! Multiset polynomials and prefix evaluations.
//!
//! * [`multiset_poly_eval`] computes `φ_S(z) = ∏_{s ∈ S} (s − z)` over 𝔽_p —
//!   the multiset-equality polynomial of Lemma 2.6 of the paper.
//! * [`prefix_poly_evals`] computes, for a bitstring `x[1..L]` (most
//!   significant bit first), the values `φ_i(z)` of the polynomials
//!   identified with the prefixes `x[1..i]` interpreted as the subset
//!   `{ j ≤ i : x[j] = 1 }` of `[L]` — exactly the per-node values
//!   `φ_i^b(r')` of the LR-sorting commitment scheme (§4.2).

use crate::field::Fp;

/// Evaluates `φ_S(z) = ∏_{s ∈ S} (s − z)` over the field.
///
/// Runs on [`Fp::product_accumulate`]: one Montgomery step per element
/// and a single domain fixup at the end, no divisions. The
/// division-based reference lives in [`multiset_poly_eval_naive`].
pub fn multiset_poly_eval(f: &Fp, s: impl IntoIterator<Item = u64>, z: u64) -> u64 {
    let z = f.reduce(z);
    f.product_accumulate(1, s.into_iter().map(|x| f.sub(x, z)))
}

/// Reference evaluation of `φ_S(z)` through [`Fp::mul_naive`] (one
/// `u128` hardware remainder per element) — the differential-test and
/// `pdip bench-hotpath` baseline.
pub fn multiset_poly_eval_naive(f: &Fp, s: impl IntoIterator<Item = u64>, z: u64) -> u64 {
    let z = f.reduce(z);
    let mut acc = 1u64;
    for x in s {
        acc = f.mul_naive(acc, f.sub(x, z));
    }
    acc
}

/// For a bitstring (MSB first, 1-indexed conceptually), the cumulative
/// evaluations `φ_0(z), φ_1(z), ..., φ_L(z)` where
/// `φ_i(z) = ∏_{j ≤ i, bits[j-1]} (j − z)`.
///
/// Returns a vector of length `L + 1` (`out[0] = 1`, empty prefix).
/// The index `j` fed into the polynomial is 1-based, matching the paper's
/// subset-of-`[⌈log n⌉]` encoding.
pub fn prefix_poly_evals(f: &Fp, bits: &[bool], z: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(bits.len() + 1);
    let mut acc = 1u64;
    out.push(acc);
    for (j, &b) in bits.iter().enumerate() {
        if b {
            acc = f.mul(acc, f.sub((j + 1) as u64, z));
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::smallest_prime_above;

    #[test]
    fn empty_multiset_is_one() {
        let f = Fp::new(101);
        assert_eq!(multiset_poly_eval(&f, [], 42), 1);
        assert_eq!(multiset_poly_eval_naive(&f, [], 42), 1);
    }

    #[test]
    fn fast_and_naive_evaluations_agree() {
        let f = Fp::new(smallest_prime_above(1 << 16));
        let s: Vec<u64> = (0..500u64).map(|i| i * i + 3).collect();
        for z in [0u64, 1, 17, 65_536, u64::MAX] {
            assert_eq!(
                multiset_poly_eval(&f, s.iter().copied(), z),
                multiset_poly_eval_naive(&f, s.iter().copied(), z),
                "z={z}"
            );
        }
    }

    #[test]
    fn multiplicities_matter() {
        let f = Fp::new(smallest_prime_above(1000));
        let a = multiset_poly_eval(&f, [5u64, 5, 9], 3);
        let b = multiset_poly_eval(&f, [5u64, 9, 9], 3);
        assert_ne!(a, b);
        let c = multiset_poly_eval(&f, [9u64, 5, 5], 3);
        assert_eq!(a, c); // order-independent
    }

    #[test]
    fn roots_vanish() {
        let f = Fp::new(101);
        assert_eq!(multiset_poly_eval(&f, [7u64, 13], 7), 0);
        assert_eq!(multiset_poly_eval(&f, [7u64, 13], 13), 0);
        assert_ne!(multiset_poly_eval(&f, [7u64, 13], 8), 0);
    }

    #[test]
    fn prefix_evals_match_direct() {
        let f = Fp::new(smallest_prime_above(1 << 12));
        let bits = [true, false, true, true, false, true];
        let z = 999u64;
        let prefs = prefix_poly_evals(&f, &bits, z);
        assert_eq!(prefs.len(), bits.len() + 1);
        for i in 0..=bits.len() {
            let subset: Vec<u64> = (1..=i).filter(|&j| bits[j - 1]).map(|j| j as u64).collect();
            assert_eq!(prefs[i], multiset_poly_eval(&f, subset, z), "prefix {i}");
        }
    }

    #[test]
    fn equal_prefixes_agree_unequal_rarely() {
        let f = Fp::new(smallest_prime_above(1 << 16));
        let x = [true, true, false, true];
        let y = [true, false, false, true]; // differs at index 2
        let mut diff_at = Vec::new();
        for z in 0..100u64 {
            let px = prefix_poly_evals(&f, &x, z);
            let py = prefix_poly_evals(&f, &y, z);
            assert_eq!(px[1], py[1]); // shared prefix of length 1
            if px[2] != py[2] {
                diff_at.push(z);
            }
        }
        assert!(diff_at.len() >= 98); // degree <= 2 difference
    }
}
