//! Deterministic primality testing and prime windows.
//!
//! The protocols pick moduli as "the smallest prime above `polylog n`"
//! (Lemma 2.6, §4) and — in this reproduction's spanning-tree verifier —
//! sample uniformly from the primes in a window `[w, 2w]`. All sizes in
//! play fit comfortably in `u64`, so we use the deterministic
//! Miller–Rabin base set valid for all 64-bit integers.

/// Deterministic Miller–Rabin for `u64` (exact for all inputs).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    let mul = |a: u64, b: u64| ((a as u128 * b as u128) % n as u128) as u64;
    let pow = |mut base: u64, mut e: u64| {
        let mut acc = 1u64;
        base %= n;
        while e > 0 {
            if e & 1 == 1 {
                acc = mul(acc, base);
            }
            base = mul(base, base);
            e >>= 1;
        }
        acc
    };
    // This base set is deterministic for all n < 2^64.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime `>= n`.
///
/// # Panics
/// Panics if there is no prime `>= n` representable in `u64` (practically
/// unreachable for protocol parameters).
pub fn smallest_prime_above(n: u64) -> u64 {
    let mut c = n.max(2);
    loop {
        if is_prime(c) {
            return c;
        }
        c = c.checked_add(1).expect("prime search overflow");
    }
}

/// The smallest prime strictly greater than `n`.
pub fn next_prime(n: u64) -> u64 {
    smallest_prime_above(n + 1)
}

/// All primes in `[lo, hi]` (inclusive), ascending. Intended for
/// `polylog n`-sized windows; complexity is `O((hi - lo) * cost(MR))`.
pub fn primes_in_window(lo: u64, hi: u64) -> Vec<u64> {
    (lo.max(2)..=hi).filter(|&x| is_prime(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];
        for n in 0..43u64 {
            assert_eq!(is_prime(n), known.contains(&n), "n = {n}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime(n), "Carmichael {n}");
        }
    }

    #[test]
    fn known_large_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1 (Mersenne)
        assert!(is_prime(1_000_000_007));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(18_446_744_073_709_551_615)); // u64::MAX
    }

    #[test]
    fn next_prime_steps() {
        assert_eq!(smallest_prime_above(0), 2);
        assert_eq!(smallest_prime_above(14), 17);
        assert_eq!(smallest_prime_above(17), 17);
        assert_eq!(next_prime(17), 19);
    }

    #[test]
    fn window_contents() {
        assert_eq!(primes_in_window(10, 30), vec![11, 13, 17, 19, 23, 29]);
        assert!(primes_in_window(24, 28).is_empty());
        // Bertrand: a window [w, 2w] always contains a prime.
        for w in [8u64, 100, 1000, 123_456] {
            assert!(!primes_in_window(w, 2 * w).is_empty());
        }
    }

    #[test]
    fn exhaustive_vs_sieve_up_to_10000() {
        let n = 10_000usize;
        let mut sieve = vec![true; n + 1];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..=n {
            if sieve[i] {
                for j in (i * i..=n).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for i in 0..=n {
            assert_eq!(is_prime(i as u64), sieve[i], "i = {i}");
        }
    }
}
