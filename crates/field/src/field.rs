//! Prime-field arithmetic over `u64` moduli.
//!
//! Multiplication is the protocols' innermost operation (every multiset
//! fingerprint `φ_S(z) = ∏ (s − z)` is one product per element), so `Fp`
//! precomputes a Montgomery context at construction and performs all
//! products reduction-free: a Montgomery step costs three 64-bit
//! multiplies instead of a 128-by-64-bit hardware division. The
//! division-based reference implementations ([`Fp::mul_naive`],
//! [`Fp::pow_naive`]) remain available as the differential-testing and
//! benchmarking baseline.

/// The prime field 𝔽_p for a prime `p < 2⁶⁴`.
///
/// Elements are canonical representatives in `0..p`. For odd `p < 2⁶³`
/// (every modulus the protocols use) multiplication runs through a
/// precomputed Montgomery context and is division-free; the remaining
/// moduli (`p = 2` and primes above 2⁶³) fall back to exact `u128`
/// remainders.
///
/// # Examples
///
/// ```
/// use pdip_field::Fp;
///
/// let f = Fp::new(101);
/// assert_eq!(f.add(70, 70), 39);
/// assert_eq!(f.mul(f.inv(7), 7), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp {
    p: u64,
    /// Montgomery context active (odd `p < 2⁶³`).
    mont: bool,
    /// `-p⁻¹ mod 2⁶⁴`.
    n_inv: u64,
    /// `R mod p` with `R = 2⁶⁴` (the Montgomery form of 1).
    r1: u64,
    /// `R² mod p` (converts into Montgomery form).
    r2: u64,
}

impl Fp {
    /// Creates the field 𝔽_p and precomputes its Montgomery context.
    ///
    /// # Panics
    /// Panics if `p` is not prime (checked deterministically).
    pub fn new(p: u64) -> Self {
        assert!(crate::primes::is_prime(p), "{p} is not prime");
        let mont = p & 1 == 1 && p < 1u64 << 63;
        let (n_inv, r1, r2) = if mont {
            // Newton–Hensel inversion of p mod 2^64: x ← x(2 − px)
            // doubles the number of correct low bits each step; p odd
            // gives 3 correct bits to start, five steps reach ≥ 64.
            let mut inv = p;
            for _ in 0..5 {
                inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
            }
            debug_assert_eq!(p.wrapping_mul(inv), 1);
            let r1 = ((1u128 << 64) % p as u128) as u64;
            let r2 = ((r1 as u128 * r1 as u128) % p as u128) as u64;
            (inv.wrapping_neg(), r1, r2)
        } else {
            (0, 0, 0)
        };
        Fp { p, mont, n_inv, r1, r2 }
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Number of bits needed to transmit one field element.
    pub fn element_bits(&self) -> usize {
        64 - (self.p - 1).leading_zeros() as usize
    }

    /// Canonical representative of `x`. Division-free on canonical
    /// inputs (the hot case): only values `>= p` pay a remainder.
    pub fn reduce(&self, x: u64) -> u64 {
        if x < self.p {
            x
        } else {
            x % self.p
        }
    }

    /// Canonical representative of a signed value.
    pub fn reduce_i64(&self, x: i64) -> u64 {
        let r = x.rem_euclid(self.p as i64);
        r as u64
    }

    /// `a + b mod p`.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        let s = a as u128 + b as u128;
        let p = self.p as u128;
        if s >= p {
            (s - p) as u64
        } else {
            s as u64
        }
    }

    /// `a - b mod p`.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        if a >= b {
            a - b
        } else {
            // a < b < p, so (p − b) + a < p: no intermediate overflow
            // even for moduli just below 2⁶⁴.
            (self.p - b) + a
        }
    }

    /// `-a mod p`.
    pub fn neg(&self, a: u64) -> u64 {
        self.sub(0, a)
    }

    /// One Montgomery step: `a · b · R⁻¹ mod p` for canonical `a`, `b`.
    ///
    /// With `p < 2⁶³`: `t = ab < 2¹²⁶` and `mp < 2¹²⁷`, so `t + mp`
    /// cannot overflow `u128`, and the shifted result is `< 2p`, fixed by
    /// one conditional subtraction.
    #[inline]
    fn montmul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.mont);
        let t = a as u128 * b as u128;
        let m = (t as u64).wrapping_mul(self.n_inv);
        let u = ((t + m as u128 * self.p as u128) >> 64) as u64;
        if u >= self.p {
            u - self.p
        } else {
            u
        }
    }

    /// `a * b mod p`, division-free (two Montgomery steps: one product,
    /// one conversion back to the canonical domain).
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        if self.mont {
            let (a, b) = (self.reduce(a), self.reduce(b));
            self.montmul(self.montmul(a, b), self.r2)
        } else {
            self.mul_naive(a, b)
        }
    }

    /// Reference `a * b mod p` through a `u128` hardware remainder.
    ///
    /// This is the pre-Montgomery implementation, kept as the baseline
    /// for differential tests (`tests/differential.rs`) and for the
    /// speedup measurement of `pdip bench-hotpath`.
    pub fn mul_naive(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        ((a as u128 * b as u128) % self.p as u128) as u64
    }

    /// `a^e mod p` by square-and-multiply, entirely in the Montgomery
    /// domain (one conversion in, one out).
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        if !self.mont {
            return self.pow_naive(a, e);
        }
        let mut base = self.montmul(self.reduce(a), self.r2);
        let mut acc = self.r1;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.montmul(acc, base);
            }
            base = self.montmul(base, base);
            e >>= 1;
        }
        self.montmul(acc, 1)
    }

    /// Reference `a^e mod p` built on [`Fp::mul_naive`] (differential
    /// baseline).
    pub fn pow_naive(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul_naive(acc, base);
            }
            base = self.mul_naive(base, base);
            e >>= 1;
        }
        acc
    }

    /// `init · ∏ factors mod p` at one Montgomery step per factor.
    ///
    /// The product is split over eight independent accumulator lanes
    /// (element `i` multiplies into lane `i mod 8`), so consecutive
    /// Montgomery steps carry no data dependency and the multiplier
    /// pipeline stays full — a hardware divider cannot be pipelined this
    /// way, which is where the batch speedup over [`Fp::mul_naive`]
    /// comes from. Each lane drifts by one `R⁻¹` per absorbed element
    /// after its first (absorbed as-is); merging the `min(k, 8)` live
    /// lanes into `init` brings the total count of Montgomery steps to
    /// exactly `k`, and a single `R^(k+1)` fixup restores the canonical
    /// value. This is the batch entry point behind
    /// [`crate::poly::multiset_poly_eval`].
    pub fn product_accumulate(&self, init: u64, factors: impl IntoIterator<Item = u64>) -> u64 {
        let mut acc = self.reduce(init);
        if !self.mont {
            for f in factors {
                acc = self.mul_naive(acc, f);
            }
            return acc;
        }
        let mut it = factors.into_iter();
        // Prime each lane with its first factor as-is (no Montgomery
        // step), so a lane drifts only for elements after its first.
        let mut lanes = [0u64; 8];
        let mut primed = 0usize;
        while primed < 8 {
            match it.next() {
                Some(x) => {
                    lanes[primed] = self.reduce(x);
                    primed += 1;
                }
                None => break,
            }
        }
        let mut k = primed as u64;
        if primed == 8 {
            // Register-resident lanes; the unrolled body keeps eight
            // independent Montgomery steps in flight per pass.
            let [mut l0, mut l1, mut l2, mut l3, mut l4, mut l5, mut l6, mut l7] = lanes;
            'drain: loop {
                macro_rules! step {
                    ($lane:ident) => {
                        let Some(x) = it.next() else { break 'drain };
                        $lane = self.montmul($lane, self.reduce(x));
                        k += 1;
                    };
                }
                step!(l0);
                step!(l1);
                step!(l2);
                step!(l3);
                step!(l4);
                step!(l5);
                step!(l6);
                step!(l7);
            }
            lanes = [l0, l1, l2, l3, l4, l5, l6, l7];
        }
        // (k − primed) lane steps + primed merges = k Montgomery steps
        // in total, so acc = init · ∏f · R^{-k}; one montmul by R^{k+1}
        // multiplies by R^k and lands back in 0..p.
        for &lane in &lanes[..primed] {
            acc = self.montmul(acc, lane);
        }
        self.montmul(acc, self.pow(self.r1, k + 1))
    }

    /// `∏ factors mod p` (empty product = 1). See
    /// [`Fp::product_accumulate`].
    pub fn mul_many(&self, factors: impl IntoIterator<Item = u64>) -> u64 {
        self.product_accumulate(1, factors)
    }

    /// The multiplicative inverse of `a`.
    ///
    /// # Panics
    /// Panics if `a ≡ 0 (mod p)`.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert_ne!(a, 0, "zero has no inverse");
        // Fermat: a^(p-2).
        self.pow(a, self.p - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let f = Fp::new(13);
        assert_eq!(f.add(7, 9), 3);
        assert_eq!(f.sub(3, 9), 7);
        assert_eq!(f.neg(5), 8);
        assert_eq!(f.mul(7, 9), 63 % 13);
        assert_eq!(f.pow(2, 12), 1); // Fermat
    }

    #[test]
    fn inverses() {
        let f = Fp::new(1_000_003);
        for a in [1u64, 2, 999, 1_000_002] {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        Fp::new(7).inv(0);
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn composite_rejected() {
        Fp::new(10);
    }

    #[test]
    fn large_modulus_no_overflow() {
        // Largest prime below 2^63.
        let p = crate::primes::smallest_prime_above((1u64 << 62) + 1);
        let f = Fp::new(p);
        let a = p - 1;
        assert_eq!(f.mul(a, a), 1); // (-1)^2 = 1
        assert_eq!(f.add(a, 2), 1);
    }

    #[test]
    fn modulus_above_montgomery_range_falls_back() {
        // The largest u64 prime sits above 2^63: the Montgomery context
        // is disabled and everything routes through the naive path.
        let p = 18_446_744_073_709_551_557;
        let f = Fp::new(p);
        let a = p - 1;
        assert_eq!(f.mul(a, a), 1);
        assert_eq!(f.pow(a, 2), 1);
        assert_eq!(f.mul_many([a, a, a]), a);
        assert_eq!(f.add(a, 2), 1);
        assert_eq!(f.mul(f.inv(12345), 12345), 1);
    }

    #[test]
    fn smallest_prime_two_falls_back() {
        let f = Fp::new(2);
        assert_eq!(f.mul(1, 1), 1);
        assert_eq!(f.pow(1, 5), 1);
        assert_eq!(f.add(1, 1), 0);
        assert_eq!(f.mul_many([1, 1, 1]), 1);
    }

    #[test]
    fn montgomery_agrees_with_naive_on_fixed_grid() {
        for p in [3u64, 13, 65_537, 1_000_003, (1u64 << 61) - 1] {
            let f = Fp::new(p);
            for a in [0u64, 1, 2, p / 2, p - 2, p - 1] {
                for b in [0u64, 1, 3, p / 3, p - 1] {
                    assert_eq!(f.mul(a, b), f.mul_naive(a, b), "p={p} a={a} b={b}");
                }
                assert_eq!(f.pow(a, 12345), f.pow_naive(a, 12345), "p={p} a={a}");
            }
        }
    }

    #[test]
    fn batch_products_match_folds() {
        let f = Fp::new(65_537);
        assert_eq!(f.mul_many([]), 1);
        assert_eq!(f.mul_many([7]), 7);
        assert_eq!(f.product_accumulate(5, []), 5);
        let xs: Vec<u64> = (1..200).map(|i| i * 31 % 65_537).collect();
        let folded = xs.iter().fold(1u64, |acc, &x| f.mul_naive(acc, x));
        assert_eq!(f.mul_many(xs.iter().copied()), folded);
        assert_eq!(f.product_accumulate(42, xs.iter().copied()), f.mul_naive(42, folded));
    }

    #[test]
    fn batch_products_with_unreduced_inputs() {
        let f = Fp::new(101);
        // Inputs above p reduce exactly as the naive path reduces them.
        assert_eq!(f.mul_many([202, 305, 7]), f.mul_naive(f.mul_naive(202, 305), 7));
    }

    #[test]
    fn signed_reduction() {
        let f = Fp::new(11);
        assert_eq!(f.reduce_i64(-1), 10);
        assert_eq!(f.reduce_i64(-22), 0);
        assert_eq!(f.reduce_i64(25), 3);
    }

    #[test]
    fn element_bits() {
        assert_eq!(Fp::new(2).element_bits(), 1);
        assert_eq!(Fp::new(13).element_bits(), 4);
        assert_eq!(Fp::new(257).element_bits(), 9);
    }
}
