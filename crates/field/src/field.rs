//! Prime-field arithmetic over `u64` moduli.

/// The prime field 𝔽_p for a prime `p < 2⁶⁴`.
///
/// Elements are canonical representatives in `0..p`. All operations reduce
/// through `u128` intermediates, so they are exact for any 64-bit prime.
///
/// # Examples
///
/// ```
/// use pdip_field::Fp;
///
/// let f = Fp::new(101);
/// assert_eq!(f.add(70, 70), 39);
/// assert_eq!(f.mul(f.inv(7), 7), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp {
    p: u64,
}

impl Fp {
    /// Creates the field 𝔽_p.
    ///
    /// # Panics
    /// Panics if `p` is not prime (checked deterministically).
    pub fn new(p: u64) -> Self {
        assert!(crate::primes::is_prime(p), "{p} is not prime");
        Fp { p }
    }

    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Number of bits needed to transmit one field element.
    pub fn element_bits(&self) -> usize {
        64 - (self.p - 1).leading_zeros() as usize
    }

    /// Canonical representative of `x`.
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.p
    }

    /// Canonical representative of a signed value.
    pub fn reduce_i64(&self, x: i64) -> u64 {
        let r = x.rem_euclid(self.p as i64);
        r as u64
    }

    /// `a + b mod p`.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        let s = a as u128 + b as u128;
        (s % self.p as u128) as u64
    }

    /// `a - b mod p`.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// `-a mod p`.
    pub fn neg(&self, a: u64) -> u64 {
        self.sub(0, a)
    }

    /// `a * b mod p`.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (self.reduce(a), self.reduce(b));
        ((a as u128 * b as u128) % self.p as u128) as u64
    }

    /// `a^e mod p` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// The multiplicative inverse of `a`.
    ///
    /// # Panics
    /// Panics if `a ≡ 0 (mod p)`.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert_ne!(a, 0, "zero has no inverse");
        // Fermat: a^(p-2).
        self.pow(a, self.p - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let f = Fp::new(13);
        assert_eq!(f.add(7, 9), 3);
        assert_eq!(f.sub(3, 9), 7);
        assert_eq!(f.neg(5), 8);
        assert_eq!(f.mul(7, 9), 63 % 13);
        assert_eq!(f.pow(2, 12), 1); // Fermat
    }

    #[test]
    fn inverses() {
        let f = Fp::new(1_000_003);
        for a in [1u64, 2, 999, 1_000_002] {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn zero_inverse_panics() {
        Fp::new(7).inv(0);
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn composite_rejected() {
        Fp::new(10);
    }

    #[test]
    fn large_modulus_no_overflow() {
        // Largest prime below 2^63.
        let p = crate::primes::smallest_prime_above((1u64 << 62) + 1);
        let f = Fp::new(p);
        let a = p - 1;
        assert_eq!(f.mul(a, a), 1); // (-1)^2 = 1
        assert_eq!(f.add(a, 2), 1);
    }

    #[test]
    fn signed_reduction() {
        let f = Fp::new(11);
        assert_eq!(f.reduce_i64(-1), 10);
        assert_eq!(f.reduce_i64(-22), 0);
        assert_eq!(f.reduce_i64(25), 3);
    }

    #[test]
    fn element_bits() {
        assert_eq!(Fp::new(2).element_bits(), 1);
        assert_eq!(Fp::new(13).element_bits(), 4);
        assert_eq!(Fp::new(257).element_bits(), 9);
    }
}
