//! Differential tests: the Montgomery fast path agrees with the naive
//! `u128 %` reference on every operation, across the moduli the
//! protocols actually draw from `primes.rs` (smallest-prime-above
//! polylog windows, prime windows `[w, 2w]`, and the Montgomery range
//! boundaries), for random operands and the edge cases `0`, `1`, `p−1`.

use pdip_field::{
    multiset_poly_eval, multiset_poly_eval_naive, primes_in_window, smallest_prime_above, Fp,
};
use proptest::prelude::*;

/// Moduli representative of everything `primes.rs` can hand a protocol:
/// tiny primes, the polylog windows of Lemma 2.6 / §4, the verification
/// field `p' > p·L`, and both sides of the Montgomery cutoff.
fn protocol_moduli() -> Vec<u64> {
    let mut ps = vec![2u64, 3, 5, 17];
    for w in [17u64, 1 << 10, 1 << 16, 1 << 20] {
        ps.push(smallest_prime_above(w));
    }
    // A whole spanning-tree window, as sampled by Lemma 2.5.
    ps.extend(primes_in_window(100, 200));
    // Montgomery boundary: largest primes below 2^62/2^63, smallest above.
    ps.push(smallest_prime_above((1 << 62) + 1));
    ps.push((1u64 << 61) - 1); // Mersenne
    ps.push(smallest_prime_above(1u64 << 63)); // falls back to naive
    ps.push(18_446_744_073_709_551_557); // largest u64 prime
    ps.sort_unstable();
    ps.dedup();
    ps
}

/// The operand edge cases for a given modulus, plus unreduced values.
fn edge_operands(p: u64) -> Vec<u64> {
    let mut xs = vec![0u64, 1, 2, p / 2, p.saturating_sub(2), p - 1, p, p.wrapping_add(1)];
    xs.push(u64::MAX);
    xs
}

#[test]
fn mul_pow_inv_agree_on_edge_cases_for_all_moduli() {
    for p in protocol_moduli() {
        let f = Fp::new(p);
        for &a in &edge_operands(p) {
            for &b in &edge_operands(p) {
                assert_eq!(f.mul(a, b), f.mul_naive(a, b), "mul p={p} a={a} b={b}");
            }
            for e in [0u64, 1, 2, p - 1, p, u64::MAX] {
                assert_eq!(f.pow(a, e), f.pow_naive(a, e), "pow p={p} a={a} e={e}");
            }
            if f.reduce(a) != 0 {
                let inv = f.inv(a);
                assert_eq!(f.mul_naive(f.reduce(a), inv), f.reduce(1), "inv p={p} a={a}");
            }
        }
    }
}

#[test]
fn batch_products_agree_on_edge_multisets() {
    for p in protocol_moduli() {
        let f = Fp::new(p);
        let sets: Vec<Vec<u64>> =
            vec![vec![], vec![0], vec![p - 1; 5], vec![0, 1, p - 1, p / 2], edge_operands(p)];
        for s in sets {
            let naive = s.iter().fold(1u64, |acc, &x| f.mul_naive(acc, x));
            assert_eq!(f.mul_many(s.iter().copied()), naive, "p={p} s={s:?}");
            for z in [0u64, 1, p - 1] {
                assert_eq!(
                    multiset_poly_eval(&f, s.iter().copied(), z),
                    multiset_poly_eval_naive(&f, s.iter().copied(), z),
                    "phi p={p} z={z} s={s:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random operands over a random protocol modulus: one Montgomery
    /// product equals one hardware remainder.
    #[test]
    fn mul_matches_naive(which in 0usize..64, a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        let ms = protocol_moduli();
        let f = Fp::new(ms[which % ms.len()]);
        prop_assert_eq!(f.mul(a, b), f.mul_naive(a, b));
    }

    /// Montgomery-domain exponentiation equals the naive ladder.
    #[test]
    fn pow_matches_naive(which in 0usize..64, a in 0u64..=u64::MAX, e in 0u64..=u64::MAX) {
        let ms = protocol_moduli();
        let f = Fp::new(ms[which % ms.len()]);
        prop_assert_eq!(f.pow(a, e), f.pow_naive(a, e));
    }

    /// Fermat inverses verify against the naive product.
    #[test]
    fn inv_is_a_real_inverse(which in 0usize..64, a in 0u64..=u64::MAX) {
        let ms = protocol_moduli();
        let f = Fp::new(ms[which % ms.len()]);
        let a = f.reduce(a);
        if a != 0 {
            prop_assert_eq!(f.mul_naive(a, f.inv(a)), f.reduce(1));
        }
    }

    /// The drifting-domain batch product matches a naive fold, and the
    /// fingerprint evaluation matches its reference, for random multisets.
    #[test]
    fn batch_matches_naive(
        which in 0usize..64,
        init in 0u64..=u64::MAX,
        s in prop::collection::vec(0u64..=u64::MAX, 0..48),
        z in 0u64..=u64::MAX,
    ) {
        let ms = protocol_moduli();
        let f = Fp::new(ms[which % ms.len()]);
        let naive = s.iter().fold(f.reduce(init), |acc, &x| f.mul_naive(acc, x));
        prop_assert_eq!(f.product_accumulate(init, s.iter().copied()), naive);
        prop_assert_eq!(
            multiset_poly_eval(&f, s.iter().copied(), z),
            multiset_poly_eval_naive(&f, s.iter().copied(), z)
        );
    }
}
