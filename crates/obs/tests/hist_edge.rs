//! Edge-case coverage for `pdip_obs::Histogram`: empty snapshots,
//! single-observation quantiles, saturation at the top bucket, and
//! merge/delta over disjoint snapshots.

use pdip_obs::{AtomicHistogram, Histogram};

#[test]
fn empty_histogram_snapshot_is_all_zero() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.total_nanos(), 0);
    assert_eq!(h.mean_nanos(), 0);
    assert!(h.buckets().iter().all(|&b| b == 0));
    assert_eq!(h.quantile_upper_bound(0.0), 0);
    assert_eq!(h.quantile_upper_bound(0.5), 0);
    assert_eq!(h.quantile_upper_bound(1.0), 0);

    // The atomic twin snapshots to the same empty histogram.
    let a = AtomicHistogram::default();
    assert_eq!(a.count(), 0);
    assert_eq!(a.snapshot(), h);
}

#[test]
fn single_observation_pins_every_quantile() {
    let mut h = Histogram::new();
    h.record(1000); // bucket 10: [512, 1024)
    assert_eq!(h.count(), 1);
    assert_eq!(h.mean_nanos(), 1000);
    // With one sample, every quantile lands in its bucket.
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile_upper_bound(q), 1024, "q={q}");
    }
    // Out-of-range q clamps instead of panicking.
    assert_eq!(h.quantile_upper_bound(-1.0), 1024);
    assert_eq!(h.quantile_upper_bound(2.0), 1024);
}

#[test]
fn top_bucket_saturates_not_overflows() {
    let mut h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    h.record(1u64 << 63);
    assert_eq!(h.buckets()[63], 3, "all huge observations share bucket 63");
    assert_eq!(h.count(), 3);
    // The running total saturates rather than wrapping.
    assert_eq!(h.total_nanos(), u64::MAX);
    // Quantiles in the top bucket report the open upper bound.
    assert_eq!(h.quantile_upper_bound(1.0), u64::MAX);

    let a = AtomicHistogram::default();
    a.record(u64::MAX);
    a.record(u64::MAX);
    let snap = a.snapshot();
    assert_eq!(snap.buckets()[63], 2);
    assert_eq!(snap.total_nanos(), u64::MAX, "atomic total saturates too");
}

#[test]
fn merge_of_disjoint_snapshots_preserves_both() {
    let mut low = Histogram::new();
    for x in [1u64, 2, 3] {
        low.record(x);
    }
    let mut high = Histogram::new();
    for x in [1u64 << 20, 1u64 << 30] {
        high.record(x);
    }
    // No bucket is populated by both sides.
    assert!(low.buckets().iter().zip(high.buckets().iter()).all(|(&a, &b)| a == 0 || b == 0));
    let mut merged = low.clone();
    merged.merge(&high);
    assert_eq!(merged.count(), 5);
    assert_eq!(merged.total_nanos(), 6 + (1u64 << 20) + (1u64 << 30));
    for i in 0..64 {
        assert_eq!(merged.buckets()[i], low.buckets()[i] + high.buckets()[i], "bucket {i}");
    }
    // Quantiles span the merged range: median from the low side, max
    // from the high side.
    assert!(merged.quantile_upper_bound(0.5) <= 8);
    assert_eq!(merged.quantile_upper_bound(1.0), 1u64 << 31);
}

#[test]
fn delta_since_recovers_the_interval() {
    let a = AtomicHistogram::default();
    a.record(10);
    let before = a.snapshot();
    a.record(20);
    a.record(1u64 << 40);
    let after = a.snapshot();
    let d = after.delta_since(&before);
    assert_eq!(d.count(), 2);
    assert_eq!(d.total_nanos(), 20 + (1u64 << 40));
    assert_eq!(d.buckets()[5], 1, "20ns lands in bucket 5");
    assert_eq!(d.buckets()[41], 1);
    // Delta against itself is empty; delta against a *later* snapshot
    // clamps to zero instead of wrapping.
    assert_eq!(after.delta_since(&after).count(), 0);
    assert_eq!(before.delta_since(&after).count(), 0);
}
