//! Counting-allocator proof that the disabled recorder is zero-cost.
//!
//! Same discipline as `crates/graph/tests/alloc_steady_state.rs`
//! (PR 3): exactly ONE `#[test]` in this file — a second concurrent
//! test would bleed its allocations into the counter.

use pdip_obs::{counter, span, NoopRecorder, Recorder, SpanId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A representative instrumented hot loop: nested spans with counters
/// and explicit duration observations, as the protocol and engine
/// layers emit them.
fn instrumented_workload(rec: &dyn Recorder) -> u64 {
    let mut acc = 0u64;
    for round in 0..64u64 {
        let id = SpanId::at("proto/round", round);
        let _outer = span(rec, 0, id);
        for node in 0..16u64 {
            let inner = SpanId::at2("proto/node", round, node);
            let _g = span(rec, 0, inner);
            counter(rec, 0, inner, "bits", round ^ node);
            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(node);
        }
        counter(rec, 0, id, "max_label_bits", round);
        rec.duration("proto/round", acc & 0xFFFF);
    }
    acc
}

#[test]
fn warm_noop_instrumentation_does_not_allocate() {
    let rec = NoopRecorder;
    // Warm-up: fault in anything lazily initialised by the runtime.
    let warm = instrumented_workload(&rec);

    // The counter is process-global, so a libtest/runtime background
    // thread can allocate concurrently with the measured window. An
    // allocation *in the instrumented path* would show up on every
    // attempt; ambient noise clears within a few retries.
    let mut best = u64::MAX;
    let mut acc = 0u64;
    for _ in 0..16 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..8 {
            acc ^= instrumented_workload(&rec);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }

    assert_eq!(best, 0, "NoopRecorder-instrumented warm paths must be allocation-free");
    // Keep the workload observable so nothing is optimised away.
    assert_eq!(acc, 0, "xor of identical runs cancels");
    assert_ne!(warm, 1);
}
