//! The collecting recorder's drain must be independent of thread
//! count, scheduling, and flush timing — that is what lets `pdip
//! trace` commit byte-identical artifacts at `--threads 1` vs `4`.

use pdip_obs::{
    counter, span, BufferedRecorder, CollectingRecorder, Event, ScopedRecorder, SpanId,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulate an engine sweep: `jobs` logical jobs partitioned over
/// `threads` workers (work-stealing via an atomic cursor, so the
/// job→thread assignment is scheduling-dependent), each worker
/// buffering into its own shard.
fn run_sharded(jobs: u64, threads: usize) -> Vec<Event> {
    let rec = CollectingRecorder::new();
    let cursor = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let buf = BufferedRecorder::new(&rec);
                loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    if job >= jobs {
                        break;
                    }
                    let scoped = ScopedRecorder::new(&buf, job);
                    let id = SpanId::at("job/execute", job % 3);
                    let _g = span(&scoped, 0, id);
                    for round in 0..4u64 {
                        counter(&scoped, 0, SpanId::at("job/round", round), "bits", job ^ round);
                    }
                }
            });
        }
    });
    rec.drain().deterministic_events()
}

#[test]
fn drain_is_invariant_across_thread_counts() {
    let serial = run_sharded(40, 1);
    for threads in [2, 4, 7] {
        assert_eq!(serial, run_sharded(40, threads), "drain differs at {threads} threads");
    }
    // And re-running the parallel case is stable too.
    assert_eq!(run_sharded(40, 4), run_sharded(40, 4));
}

#[test]
fn drain_groups_are_sorted_by_ctx_then_span() {
    let events = run_sharded(12, 3);
    let keys: Vec<(u64, SpanId)> = events.iter().map(|e| (e.ctx, e.span)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "drain must be sorted by (ctx, span)");
    assert_eq!(events.len(), 12 * 6, "enter + exit + 4 counters per job");
}

#[test]
fn scoped_recorder_stamps_context() {
    let rec = CollectingRecorder::new();
    let scoped = ScopedRecorder::new(&rec, 17);
    counter(&scoped, 0, SpanId::new("x"), "k", 1);
    let t = rec.drain();
    assert_eq!(t.events().len(), 1);
    assert_eq!(t.events()[0].ev.ctx, 17);
    assert_eq!(t.counter_total(17, SpanId::new("x"), "k"), 1);
}

#[test]
fn counter_queries_aggregate_as_documented() {
    let rec = CollectingRecorder::new();
    for (round, bits) in [(0u64, 5u64), (1, 9), (2, 7)] {
        counter(&rec, 0, SpanId::at("p/round", round), "max_label_bits", bits);
    }
    let t = rec.drain();
    assert_eq!(t.counter_max_by_name(0, "p/round", "max_label_bits"), Some(9));
    assert_eq!(t.counter_total(0, SpanId::at("p/round", 1), "max_label_bits"), 9);
    assert_eq!(t.counter_max_by_name(0, "absent", "max_label_bits"), None);
}
