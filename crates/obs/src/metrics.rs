//! Live metrics: sharded atomic counters, gauges, and atomic duration
//! histograms behind a get-or-register [`MetricsRegistry`].
//!
//! The recorder layer ([`crate::Recorder`]) is built for *post-hoc*
//! analysis: events buffer into shards and become a [`crate::Trace`]
//! once drained. A long-lived service needs the opposite shape —
//! always-on instruments that can be read while traffic continues.
//! This module provides that shape with the same zero-dependency
//! discipline as the rest of the crate:
//!
//! * **Counters** are monotone and sharded: each thread increments its
//!   own cache-line-padded `AtomicU64` slot, so the hot path is one
//!   relaxed `fetch_add` with no cross-core ping-pong; reads sum the
//!   shards.
//! * **Gauges** keep the last observation and the running maximum.
//! * **Histograms** ([`AtomicHistogram`]) are the crate's power-of-two
//!   nanosecond buckets, atomically incremented, snapshotting into the
//!   ordinary [`Histogram`] so all existing quantile/merge machinery
//!   applies.
//!
//! Registration goes through an `RwLock`ed name map, but callers are
//! expected to register once and keep the returned `Arc` handle — the
//! steady state never touches a lock.
//!
//! # Snapshot semantics
//!
//! [`MetricsRegistry::snapshot`] reads every instrument with relaxed
//! ordering while writers continue. A snapshot is therefore not a
//! single atomic cut across instruments, but each *counter* value and
//! each *histogram count* is exact once its writers have quiesced, and
//! successive snapshots are monotone ([`MetricsSnapshot::monotone_over`]).
//! [`MetricsSnapshot::delta`] subtracts an earlier snapshot for
//! interval readings. Counter values and histogram *counts* are
//! scheduling-independent for a deterministic workload; histogram
//! bucket shapes, sums, and gauges are timing data and never enter a
//! committed artifact ([`MetricsSnapshot::render_deterministic`] is the
//! projection that may).

use crate::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Counter shards; power of two so the thread slot is a mask.
const SHARDS: usize = 8;

/// One cache line per shard so concurrent increments from different
/// threads never contend on the same line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// This thread's shard index: assigned round-robin on first use.
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            c.set(i);
        }
        i
    })
}

/// A monotone sharded counter. `add` is one relaxed `fetch_add` on a
/// thread-local shard; `get` sums the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// Adds `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A gauge holding the last observed value and the running maximum.
#[derive(Debug, Default)]
pub struct Gauge {
    last: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Records an observation.
    #[inline]
    pub fn set(&self, v: u64) {
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The most recent observation.
    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    /// The maximum observation so far.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// The atomic twin of [`Histogram`]: 64 power-of-two nanosecond
/// buckets incremented lock-free, snapshotting into the plain type.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    total: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), total: AtomicU64::new(0) }
    }
}

impl AtomicHistogram {
    /// Records one nanosecond observation.
    #[inline]
    pub fn record(&self, nanos: u64) {
        let idx = ((64 - nanos.leading_zeros()) as usize).min(63);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Saturating total, mirroring Histogram::record.
        let mut cur = self.total.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(nanos);
            match self.total.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Snapshots into a plain [`Histogram`]. The count is derived from
    /// the bucket sum so it is always internally consistent with the
    /// buckets, even while writers race the read.
    pub fn snapshot(&self) -> Histogram {
        let buckets: [u64; 64] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Histogram::from_raw(buckets, self.total.load(Ordering::Relaxed))
    }

    /// Number of observations so far (bucket sum).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// A get-or-register table of named live instruments.
///
/// Names are free-form but the serve layer uses a Prometheus-flavoured
/// scheme (`requests_total{status="accept"}`); the text encoder
/// ([`MetricsSnapshot::render_prometheus`]) passes names through
/// verbatim, emitting one `# TYPE` comment per base name (the part
/// before `{`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
}

/// Get-or-insert an instrument handle; read-lock fast path, write lock
/// only on first registration. Poisoning is tolerated the same way the
/// collecting recorder tolerates it: the map is structurally sound.
fn get_or_register<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let read = match map.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(found) = read.get(name) {
        return Arc::clone(found);
    }
    drop(read);
    let mut write = match map.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    /// Keep the handle: steady-state increments then never lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        get_or_register(&self.hists, name)
    }

    /// A point-in-time reading of every registered instrument, sorted
    /// by name (BTreeMap order). See the module docs for what is and
    /// is not atomic about it.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = match self.counters.read() {
            Ok(g) => g.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            Err(p) => p.into_inner().iter().map(|(n, c)| (n.clone(), c.get())).collect(),
        };
        let gauges = match self.gauges.read() {
            Ok(g) => g.iter().map(|(n, v)| (n.clone(), GaugeValue::read(v))).collect(),
            Err(p) => {
                p.into_inner().iter().map(|(n, v)| (n.clone(), GaugeValue::read(v))).collect()
            }
        };
        let hists = match self.hists.read() {
            Ok(g) => g.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect(),
            Err(p) => p.into_inner().iter().map(|(n, h)| (n.clone(), h.snapshot())).collect(),
        };
        MetricsSnapshot { counters, gauges, hists }
    }
}

/// A gauge reading: last observation plus running maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeValue {
    /// Most recent observation.
    pub last: u64,
    /// Maximum observation so far.
    pub max: u64,
}

impl GaugeValue {
    fn read(g: &Gauge) -> GaugeValue {
        GaugeValue { last: g.last(), max: g.max() }
    }
}

/// A point-in-time reading of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, last/max)` per gauge.
    pub gauges: Vec<(String, GaugeValue)>,
    /// `(name, histogram)` per duration histogram.
    pub hists: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// The value of the counter `name`, or `None` if absent.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, or `None` if absent.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Whether this snapshot is a valid successor of `earlier`: every
    /// counter and histogram count present earlier is present here
    /// with a value at least as large. Gauges are excluded — they are
    /// not monotone by design.
    pub fn monotone_over(&self, earlier: &MetricsSnapshot) -> bool {
        earlier.counters.iter().all(|(n, v)| self.counter(n).is_some_and(|cur| cur >= *v))
            && earlier
                .hists
                .iter()
                .all(|(n, h)| self.histogram(n).is_some_and(|cur| cur.count() >= h.count()))
    }

    /// Interval reading: this snapshot minus `earlier` (saturating).
    /// Counters subtract; histograms subtract per bucket; gauges keep
    /// the later reading (a gauge has no meaningful difference).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n).unwrap_or(0))))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(n, h)| match earlier.histogram(n) {
                Some(e) => (n.clone(), h.delta_since(e)),
                None => (n.clone(), h.clone()),
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), hists }
    }

    /// Prometheus-style text exposition: `# TYPE` comment per base
    /// name, one sample line per counter/gauge, and cumulative
    /// `_bucket{le=...}` / `_sum` / `_count` lines per histogram.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, v) in &self.counters {
            let base = name.split('{').next().unwrap_or(name);
            if base != last_base {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_base = base.to_string();
            }
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.last);
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {}", g.max);
        }
        for (name, h) in &self.hists {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets().iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                if i < 63 {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.total_nanos());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// The scheduling-independent projection: counter totals and
    /// histogram *counts* only (no bucket shapes, sums, or gauges).
    /// For a deterministic workload this rendering is byte-identical
    /// across thread counts — it is what the E14 audit digests.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(out, "hist {name} count {}", h.count());
        }
        out
    }

    /// Machine-readable JSON (one object; timing fields included).
    pub fn render_json(&self) -> String {
        let esc = crate::export::esc;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}\n    \"{}\": {v}", if i > 0 { "," } else { "" }, esc(n));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, g)) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"last\": {}, \"max\": {}}}",
                if i > 0 { "," } else { "" },
                esc(n),
                g.last,
                g.max
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.hists.iter().enumerate() {
            let buckets: Vec<String> = h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(b, c)| format!("[{b}, {c}]"))
                .collect();
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"buckets\": [{}]}}",
                if i > 0 { "," } else { "" },
                esc(n),
                h.count(),
                h.total_nanos(),
                h.mean_nanos(),
                buckets.join(", ")
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.snapshot().counter("requests_total"), Some(4000));
    }

    #[test]
    fn gauge_keeps_last_and_max() {
        let g = Gauge::default();
        g.set(7);
        g.set(3);
        assert_eq!(g.last(), 3);
        assert_eq!(g.max(), 7);
    }

    #[test]
    fn atomic_histogram_snapshots_into_plain() {
        let h = AtomicHistogram::default();
        h.record(0);
        h.record(5);
        h.record(1 << 40);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.buckets()[0], 1);
        assert_eq!(snap.buckets()[3], 1);
        assert_eq!(snap.buckets()[41], 1);
        assert_eq!(snap.total_nanos(), 5 + (1 << 40));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn snapshot_monotone_and_delta() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a_total");
        let h = reg.histogram("lat_ns");
        c.add(3);
        h.record(10);
        let s1 = reg.snapshot();
        c.add(2);
        h.record(20);
        h.record(30);
        let s2 = reg.snapshot();
        assert!(s2.monotone_over(&s1));
        assert!(!s1.monotone_over(&s2));
        let d = s2.delta(&s1);
        assert_eq!(d.counter("a_total"), Some(2));
        assert_eq!(d.histogram("lat_ns").map(Histogram::count), Some(2));
        // Same snapshot is its own (all-zero) delta and successor.
        assert!(s2.monotone_over(&s2));
        assert_eq!(s2.delta(&s2).counter("a_total"), Some(0));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total{status=\"accept\"}").add(24);
        reg.counter("requests_total{status=\"reject\"}").add(1);
        reg.gauge("queue_depth").set(3);
        reg.histogram("latency_verify_ns").record(100);
        let text = reg.snapshot().render_prometheus();
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert!(text.contains("requests_total{status=\"accept\"} 24"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth_max 3"));
        assert!(text.contains("latency_verify_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_verify_ns_count 1"));
        assert!(text.contains("latency_verify_ns_bucket{le=\"128\"} 1"));
    }

    #[test]
    fn deterministic_rendering_excludes_timing() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(5);
        reg.histogram("lat_ns").record(12345);
        let det = reg.snapshot().render_deterministic();
        assert_eq!(det, "counter a_total 5\nhist lat_ns count 1\n");
        assert!(!det.contains("12345"), "sums/buckets are timing data");
    }

    #[test]
    fn json_rendering_parses_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(1);
        reg.gauge("g").set(2);
        reg.histogram("h_ns").record(3);
        let json = reg.snapshot().render_json();
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"g\": {\"last\": 2, \"max\": 2}"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"buckets\": [[2, 1]]"));
    }
}
