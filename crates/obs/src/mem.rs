//! Memory accounting: an allocator high-water wrapper and the process
//! peak RSS.
//!
//! The E11 scaling experiment claims *bounded memory*: verifying an
//! n-node instance shard-by-shard must peak at O(max shard) live bytes,
//! not O(n). Two measurements back that claim:
//!
//! * [`PeakAlloc`] wraps the system allocator and tracks live and peak
//!   heap bytes. The peak is *resettable* ([`reset_peak`]), so a driver
//!   can measure each grid row in isolation — that per-row peak is what
//!   the sublinearity gate in `pdip scale` asserts on. The binary opts in
//!   with `#[global_allocator]`; library code only reads the counters,
//!   which report `None`-equivalent zeros when no wrapper is installed
//!   ([`alloc_installed`] tells the two apart).
//! * [`peak_rss_bytes`] reads the kernel's `VmHWM` (Linux), the
//!   whole-process high-water mark. It cannot be reset, so it bounds the
//!   *run*, not a row — reported for context, gated only loosely.
//!
//! Counter updates are `Relaxed`: the peak is maintained with a CAS loop,
//! so concurrent allocations can only *under*-report the peak by the
//! size of a racing allocation, never over-report — fine for a gate that
//! asserts an upper bound.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A [`System`]-backed global allocator that tracks live and peak heap
/// bytes. Install it in a *binary* root:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pdip_obs::PeakAlloc = pdip_obs::PeakAlloc::new();
/// ```
#[derive(Debug)]
pub struct PeakAlloc(());

impl PeakAlloc {
    /// The wrapper (stateless; counters are process-global).
    pub const fn new() -> Self {
        PeakAlloc(())
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System`; the wrapper
// only maintains side counters.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Whether a [`PeakAlloc`] is installed as the global allocator (i.e. at
/// least one tracked allocation happened). When `false`, the counters
/// are meaningless zeros and callers should report "untracked" instead.
pub fn alloc_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Currently live tracked heap bytes.
pub fn alloc_live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak tracked heap bytes since process start or the last
/// [`reset_peak`].
pub fn alloc_peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the heap peak to the current live size and returns the peak it
/// replaced. Call between measurement rows to attribute the peak to one
/// row.
pub fn reset_peak() -> usize {
    PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where unavailable (non-Linux, or a
/// locked-down procfs).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // No #[global_allocator] in unit tests (that would hijack the whole
    // test binary); exercise the counter plumbing directly.
    #[test]
    fn counters_track_alloc_dealloc_and_reset() {
        let before_live = alloc_live_bytes();
        on_alloc(1 << 20);
        assert!(alloc_live_bytes() >= before_live + (1 << 20));
        assert!(alloc_peak_bytes() >= before_live + (1 << 20));
        assert!(alloc_installed());
        on_dealloc(1 << 20);
        let peak_before = alloc_peak_bytes();
        let returned = reset_peak();
        assert_eq!(returned, peak_before);
        assert!(alloc_peak_bytes() <= peak_before);
    }

    #[test]
    fn rss_is_readable_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0, "a running process has nonzero RSS");
        }
    }
}
