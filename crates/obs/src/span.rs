//! Stable span identities, events, and the RAII span guard.

use crate::Recorder;
use std::time::Instant;

/// A stable span identity: a static name plus two integer coordinates.
///
/// Ids are derived from protocol structure — e.g.
/// `SpanId::at("planarity/round", round)` or
/// `SpanId::at2("engine/job", family_index, n)` — never from time,
/// addresses, or scheduling, so the same run always produces the same
/// ids. Ordering is lexicographic on `(name, a, b)` (string contents,
/// not pointer), which is what [`crate::CollectingRecorder::drain`]
/// sorts by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId {
    /// Static span name, conventionally `layer/what` (e.g.
    /// `"lr-sorting/round"`, `"engine/job/execute"`).
    pub name: &'static str,
    /// First coordinate (round number, stage index, …); 0 if unused.
    pub a: u64,
    /// Second coordinate (node, block, …); 0 if unused.
    pub b: u64,
}

impl SpanId {
    /// A span id with both coordinates zero.
    pub const fn new(name: &'static str) -> Self {
        Self { name, a: 0, b: 0 }
    }

    /// A span id with one coordinate.
    pub const fn at(name: &'static str, a: u64) -> Self {
        Self { name, a, b: 0 }
    }

    /// A span id with two coordinates.
    pub const fn at2(name: &'static str, a: u64, b: u64) -> Self {
        Self { name, a, b }
    }
}

/// What happened at a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span entered.
    Enter,
    /// Span exited.
    Exit,
    /// A named integer observation attributed to the span.
    Counter {
        /// Counter key, e.g. `"max_label_bits"`.
        key: &'static str,
        /// Observed value.
        value: u64,
    },
}

/// One deterministic instrumentation event.
///
/// `ctx` scopes the event to a logical context — the engine stamps the
/// job index via [`crate::ScopedRecorder`]; standalone runs use 0.
/// Nothing in this tuple may depend on wall-clock time or scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Logical context (engine job index; 0 outside the engine).
    pub ctx: u64,
    /// Which span the event belongs to.
    pub span: SpanId,
    /// What happened.
    pub kind: EventKind,
}

/// An [`Event`] plus the optional wall-clock stamp captured at record
/// time. The stamp is quarantined here — outside the [`Event`] tuple —
/// so deterministic consumers can ignore it wholesale.
#[derive(Clone, Copy, Debug)]
pub struct Stamped {
    /// The deterministic event.
    pub ev: Event,
    /// Nanoseconds since the recorder's epoch, when wall-clock capture
    /// is on ([`crate::CollectingRecorder::with_wall_clock`]).
    pub wall_nanos: Option<u64>,
}

/// RAII guard emitting `Enter` on creation and `Exit` plus a duration
/// observation on drop. Created by [`span`].
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    ctx: u64,
    span: SpanId,
    /// `Some` iff the recorder was enabled at entry; the clock is never
    /// read (and nothing is emitted on drop) otherwise.
    start: Option<Instant>,
}

/// Enter `id` on `rec`, returning a guard that exits it when dropped.
///
/// When `rec` is disabled this records nothing and never touches the
/// clock — the guard is two words on the stack.
#[inline]
pub fn span<'a>(rec: &'a dyn Recorder, ctx: u64, id: SpanId) -> SpanGuard<'a> {
    let start = if rec.enabled() {
        rec.record(Event { ctx, span: id, kind: EventKind::Enter });
        Some(Instant::now())
    } else {
        None
    };
    SpanGuard { rec, ctx, span: id, start }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec.record(Event { ctx: self.ctx, span: self.span, kind: EventKind::Exit });
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.duration(self.span.name, nanos);
        }
    }
}

/// Record a counter observation attributed to `id`. No-op (no
/// allocation, no clock) when `rec` is disabled.
#[inline]
pub fn counter(rec: &dyn Recorder, ctx: u64, id: SpanId, key: &'static str, value: u64) {
    if rec.enabled() {
        rec.record(Event { ctx, span: id, kind: EventKind::Counter { key, value } });
    }
}
