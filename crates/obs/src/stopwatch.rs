//! RAII duration capture into a [`Recorder`]'s histograms.

use crate::Recorder;
use std::time::Instant;

/// Measures the time from construction to drop and records it via
/// [`Recorder::duration`] under a static name.
///
/// With a disabled recorder nothing happens at all — no clock read on
/// either end — so a `Stopwatch` can sit on hot paths under the same
/// zero-cost contract as [`crate::span`]. Durations land in histograms,
/// which are timing data: per the crate-level determinism rules they
/// must never be written into committed artifacts.
pub struct Stopwatch<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> Stopwatch<'a> {
    /// Starts timing `name` (a no-op when `rec` is disabled).
    pub fn start(rec: &'a dyn Recorder, name: &'static str) -> Self {
        let start = rec.enabled().then(Instant::now);
        Stopwatch { rec, name, start }
    }
}

impl Drop for Stopwatch<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.duration(self.name, nanos);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::CollectingRecorder;

    #[test]
    fn records_into_histogram_when_enabled() {
        let rec = CollectingRecorder::new();
        {
            let _t = Stopwatch::start(&rec, "test/op");
        }
        let trace = rec.drain();
        let hist = trace
            .histograms()
            .iter()
            .find(|(name, _)| *name == "test/op")
            .map(|(_, h)| h)
            .expect("histogram exists");
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn noop_recorder_reads_no_clock() {
        let rec = crate::NoopRecorder;
        let t = Stopwatch::start(&rec, "test/op");
        assert!(t.start.is_none(), "disabled recorder must not start the clock");
    }
}
