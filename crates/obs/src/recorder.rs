//! The shipped recorders: noop, collecting (with buffered shards and
//! context scoping), and the drained [`Trace`].

use crate::{Event, Histogram, Recorder, SpanId, Stamped};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// The disabled recorder: every method is the trait's no-op default.
///
/// This is what every instrumented API takes when the caller does not
/// ask for tracing. `tests/alloc_noop.rs` pins that warm instrumented
/// paths through this recorder allocate exactly nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// An enabled recorder that collects events into shards and durations
/// into per-name histograms, drained into a [`Trace`].
///
/// Events recorded directly land in this recorder's own shard; worker
/// threads should record through a [`BufferedRecorder`] so their
/// events arrive as one contiguous shard each (rule 2 of the crate's
/// determinism rules). Wall-clock stamping is off by default; enable
/// it with [`CollectingRecorder::with_wall_clock`] when exporting
/// Chrome traces — stamps stay outside the deterministic event tuple.
#[derive(Debug)]
pub struct CollectingRecorder {
    /// Flushed worker shards plus (last) this recorder's direct shard.
    shards: Mutex<Vec<Vec<Stamped>>>,
    /// Events recorded without an intermediate buffer.
    direct: Mutex<Vec<Stamped>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
    epoch: Option<Instant>,
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingRecorder {
    /// A collecting recorder without wall-clock capture: drained event
    /// streams are fully deterministic; durations still accumulate
    /// into histograms.
    pub fn new() -> Self {
        Self {
            shards: Mutex::new(Vec::new()),
            direct: Mutex::new(Vec::new()),
            hists: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            epoch: None,
        }
    }

    /// A collecting recorder that additionally stamps every event with
    /// nanoseconds since creation (in [`Stamped::wall_nanos`], never
    /// in the [`Event`] itself).
    pub fn with_wall_clock() -> Self {
        Self { epoch: Some(Instant::now()), ..Self::new() }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // A poisoned instrumentation lock means a worker panicked while
        // recording; the data is still structurally sound, so keep it.
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Drain everything recorded so far into a [`Trace`].
    ///
    /// Events are stable-sorted by `(ctx, span)`: groups are totally
    /// ordered by their deterministic key, and within a group the
    /// single producing shard's insertion order survives, so the
    /// result is byte-identical across thread counts and flush timing.
    pub fn drain(&self) -> Trace {
        let mut shards = std::mem::take(&mut *Self::lock(&self.shards));
        shards.push(std::mem::take(&mut *Self::lock(&self.direct)));
        let mut events: Vec<Stamped> = shards.into_iter().flatten().collect();
        events.sort_by_key(|s| (s.ev.ctx, s.ev.span));
        let hists = std::mem::take(&mut *Self::lock(&self.hists));
        let gauges = std::mem::take(&mut *Self::lock(&self.gauges));
        Trace { events, hists: hists.into_iter().collect(), gauges: gauges.into_iter().collect() }
    }
}

impl Recorder for CollectingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self) -> Option<u64> {
        self.epoch.map(|e| u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn record(&self, ev: Event) {
        let wall_nanos = self.now();
        Self::lock(&self.direct).push(Stamped { ev, wall_nanos });
    }

    fn flush_shard(&self, shard: Vec<Stamped>) {
        if !shard.is_empty() {
            Self::lock(&self.shards).push(shard);
        }
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        Self::lock(&self.hists).entry(name).or_default().record(nanos);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut gauges = Self::lock(&self.gauges);
        let slot = gauges.entry(name).or_insert(0);
        *slot = (*slot).max(value);
    }
}

/// A per-worker buffer in front of a shared recorder.
///
/// Workers record into a local vector (one uncontended mutex, no
/// cross-thread traffic) and the whole buffer is flushed to the parent
/// as a single contiguous shard on drop — which is what makes the
/// parent's drain order independent of scheduling. Durations pass
/// straight through (histogram merge is order-insensitive).
pub struct BufferedRecorder<'a> {
    parent: &'a dyn Recorder,
    buf: Mutex<Vec<Stamped>>,
}

impl<'a> BufferedRecorder<'a> {
    /// A buffer in front of `parent`. Costs nothing (not even the
    /// buffer allocation) while `parent` is disabled.
    pub fn new(parent: &'a dyn Recorder) -> Self {
        Self { parent, buf: Mutex::new(Vec::new()) }
    }
}

impl Recorder for BufferedRecorder<'_> {
    fn enabled(&self) -> bool {
        self.parent.enabled()
    }

    fn now(&self) -> Option<u64> {
        self.parent.now()
    }

    fn record(&self, ev: Event) {
        let wall_nanos = self.parent.now();
        if let Ok(mut buf) = self.buf.lock() {
            buf.push(Stamped { ev, wall_nanos });
        }
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        self.parent.duration(name, nanos);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.parent.gauge(name, value);
    }
}

impl Drop for BufferedRecorder<'_> {
    fn drop(&mut self) {
        let buf = std::mem::take(self.buf.get_mut().unwrap_or_else(|p| p.into_inner()));
        if !buf.is_empty() {
            self.parent.flush_shard(buf);
        }
    }
}

/// A recorder view that stamps a fixed context id onto every event.
///
/// The engine wraps each job's recorder in one of these with the job
/// index as `ctx`, so protocol-level spans (which always record with
/// `ctx = 0`) become unambiguous per-job groups after the sort.
pub struct ScopedRecorder<'a> {
    inner: &'a dyn Recorder,
    ctx: u64,
}

impl<'a> ScopedRecorder<'a> {
    /// A view of `inner` that rewrites every event's `ctx`.
    pub fn new(inner: &'a dyn Recorder, ctx: u64) -> Self {
        Self { inner, ctx }
    }
}

impl Recorder for ScopedRecorder<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn now(&self) -> Option<u64> {
        self.inner.now()
    }

    fn record(&self, mut ev: Event) {
        ev.ctx = self.ctx;
        self.inner.record(ev);
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        self.inner.duration(name, nanos);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.inner.gauge(name, value);
    }
}

/// A recorder that forwards everything to two underlying recorders.
///
/// The serve path uses this to feed both a caller-supplied trace
/// recorder and the always-on live-metrics bridge from the same
/// instrumentation points: enabled when either side is, with events
/// cloned only when both sides want them.
pub struct TeeRecorder<'a> {
    a: &'a dyn Recorder,
    b: &'a dyn Recorder,
}

impl<'a> TeeRecorder<'a> {
    /// A tee over `a` and `b`.
    pub fn new(a: &'a dyn Recorder, b: &'a dyn Recorder) -> Self {
        Self { a, b }
    }
}

impl Recorder for TeeRecorder<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn now(&self) -> Option<u64> {
        self.a.now().or_else(|| self.b.now())
    }

    fn record(&self, ev: Event) {
        if self.a.enabled() {
            self.a.record(ev);
        }
        if self.b.enabled() {
            self.b.record(ev);
        }
    }

    fn flush_shard(&self, shard: Vec<Stamped>) {
        if self.a.enabled() && self.b.enabled() {
            self.a.flush_shard(shard.clone());
            self.b.flush_shard(shard);
        } else if self.a.enabled() {
            self.a.flush_shard(shard);
        } else if self.b.enabled() {
            self.b.flush_shard(shard);
        }
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        self.a.duration(name, nanos);
        self.b.duration(name, nanos);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.a.gauge(name, value);
        self.b.gauge(name, value);
    }
}

/// Everything a [`CollectingRecorder`] gathered, post-drain.
///
/// `events()` is the deterministic stream (artifact-safe once wall
/// stamps are ignored); `histograms()` is timing data (stdout only).
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<Stamped>,
    hists: Vec<(&'static str, Histogram)>,
    gauges: Vec<(&'static str, u64)>,
}

impl Trace {
    /// All events, sorted by `(ctx, span)`.
    pub fn events(&self) -> &[Stamped] {
        &self.events
    }

    /// Duration histograms, sorted by span name.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.hists
    }

    /// All gauge maxima, sorted by name. Like [`Trace::gauge_max`],
    /// these are measurement data: exporters render them, committed
    /// artifacts never include them.
    pub fn gauges(&self) -> &[(&'static str, u64)] {
        &self.gauges
    }

    /// The maximum observed value of the gauge `name`, or `None` if it
    /// was never recorded. Gauge maxima are measurement data (like
    /// durations): scheduling-dependent, so they never enter committed
    /// artifacts.
    pub fn gauge_max(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// The deterministic projection of the event stream (wall stamps
    /// dropped). Two runs of the same workload compare equal here even
    /// when wall-clock capture was on.
    pub fn deterministic_events(&self) -> Vec<Event> {
        self.events.iter().map(|s| s.ev).collect()
    }

    /// Sum of `key` counter values over events in `ctx` whose span
    /// matches `id` exactly.
    pub fn counter_total(&self, ctx: u64, id: SpanId, key: &str) -> u64 {
        self.events
            .iter()
            .filter(|s| s.ev.ctx == ctx && s.ev.span == id)
            .filter_map(|s| match s.ev.kind {
                crate::EventKind::Counter { key: k, value } if k == key => Some(value),
                _ => None,
            })
            .sum()
    }

    /// Maximum `key` counter value over all events in `ctx` whose span
    /// *name* matches `name` (any coordinates); `None` if absent.
    pub fn counter_max_by_name(&self, ctx: u64, name: &str, key: &str) -> Option<u64> {
        self.events
            .iter()
            .filter(|s| s.ev.ctx == ctx && s.ev.span.name == name)
            .filter_map(|s| match s.ev.kind {
                crate::EventKind::Counter { key: k, value } if k == key => Some(value),
                _ => None,
            })
            .max()
    }
}
