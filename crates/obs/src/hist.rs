//! Log2-bucketed duration histograms.

/// A fixed-size histogram with power-of-two nanosecond buckets.
///
/// Bucket `i` counts observations `x` with `2^(i-1) <= x < 2^i`
/// (bucket 0 counts `x == 0`), so 64 buckets cover the full `u64`
/// range with no allocation and O(1) record/merge. Histograms carry
/// *timing* data and are therefore excluded from deterministic
/// artifacts by construction — see the crate-level determinism rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, total: 0 }
    }

    /// Bucket index for a nanosecond observation.
    #[inline]
    fn bucket(nanos: u64) -> usize {
        ((64 - nanos.leading_zeros()) as usize).min(63)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket(nanos)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(nanos);
    }

    /// Build a histogram from raw bucket counts and a (saturating)
    /// nanosecond total. The observation count is derived from the
    /// bucket sum, so the result is always internally consistent —
    /// this is how [`crate::AtomicHistogram`] snapshots while writers
    /// race the read.
    pub(crate) fn from_raw(buckets: [u64; 64], total: u64) -> Self {
        let count = buckets.iter().sum();
        Self { buckets, count, total }
    }

    /// The per-bucket difference `self - earlier` (saturating), for
    /// interval readings between two snapshots of a growing histogram.
    /// Meaningful when `earlier` is a prefix of `self`'s history; any
    /// bucket where `earlier` is ahead clamps to zero.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; 64];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let total = self.total.saturating_sub(earlier.total);
        Self { buckets, count: buckets.iter().sum(), total }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in nanoseconds (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.total
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Upper bound (exclusive) of the bucket containing the `q`
    /// quantile, `0.0 <= q <= 1.0` — a coarse percentile good enough
    /// for breakdown tables. Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(u64::MAX); // bucket 63
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[63], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn merge_adds_counts_and_totals() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total_nanos(), 21);
        assert_eq!(a.mean_nanos(), 7);
    }

    #[test]
    fn quantile_bounds_are_monotone() {
        let mut h = Histogram::new();
        for x in [1u64, 10, 100, 1000, 10_000] {
            h.record(x);
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!(p50 >= 100, "median bucket bound must cover the median sample");
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
    }
}
