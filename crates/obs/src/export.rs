//! Trace exporters: deterministic JSONL and Chrome trace-event JSON.

use crate::{EventKind, Trace};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One event per line, deterministic field order, wall stamp omitted
/// entirely (not `null`) when absent — so a JSONL export of a
/// non-wall-clock trace is byte-identical across thread counts.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for s in trace.events() {
        let _ = write!(
            out,
            "{{\"ctx\": {}, \"span\": \"{}\", \"a\": {}, \"b\": {}",
            s.ev.ctx,
            esc(s.ev.span.name),
            s.ev.span.a,
            s.ev.span.b
        );
        match s.ev.kind {
            EventKind::Enter => out.push_str(", \"kind\": \"enter\""),
            EventKind::Exit => out.push_str(", \"kind\": \"exit\""),
            EventKind::Counter { key, value } => {
                let _ = write!(
                    out,
                    ", \"kind\": \"counter\", \"key\": \"{}\", \"value\": {value}",
                    esc(key)
                );
            }
        }
        if let Some(w) = s.wall_nanos {
            let _ = write!(out, ", \"wall_ns\": {w}");
        }
        out.push_str("}\n");
    }
    // Gauge maxima close the stream: one row per gauge, name-sorted
    // (the drain already sorted them), after all events.
    for (name, max) in trace.gauges() {
        let _ =
            writeln!(out, "{{\"kind\": \"gauge\", \"name\": \"{}\", \"max\": {max}}}", esc(name));
    }
    out
}

/// Histograms as JSONL: one `{"name", "count", "total_ns", "buckets"}`
/// object per line. Timing data — never commit this next to a
/// deterministic artifact.
pub fn histograms_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for (name, h) in trace.histograms() {
        let buckets: Vec<String> = h.buckets().iter().map(|b| b.to_string()).collect();
        let _ = writeln!(
            out,
            "{{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"buckets\": [{}]}}",
            esc(name),
            h.count(),
            h.total_nanos(),
            buckets.join(", ")
        );
    }
    out
}

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format):
/// a JSON array of `B`/`E`/`C` phase objects with `pid` 0 and the
/// event `ctx` as `tid`.
///
/// Timestamps (`ts`, microseconds) come from wall stamps when the
/// trace captured them; otherwise the event's stream position is used,
/// which keeps the file loadable (and deterministic) at the cost of a
/// synthetic timeline.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(trace.events().len());
    for (i, s) in trace.events().iter().enumerate() {
        let ts = match s.wall_nanos {
            Some(w) => format!("{:.3}", w as f64 / 1000.0),
            None => format!("{i}"),
        };
        let name = esc(s.ev.span.name);
        let common = format!(
            "\"pid\": 0, \"tid\": {}, \"ts\": {ts}, \"args\": {{\"a\": {}, \"b\": {}}}",
            s.ev.ctx, s.ev.span.a, s.ev.span.b
        );
        parts.push(match s.ev.kind {
            EventKind::Enter => format!("{{\"name\": \"{name}\", \"ph\": \"B\", {common}}}"),
            EventKind::Exit => format!("{{\"name\": \"{name}\", \"ph\": \"E\", {common}}}"),
            EventKind::Counter { key, value } => format!(
                "{{\"name\": \"{name}\", \"ph\": \"C\", \"pid\": 0, \"tid\": {}, \"ts\": {ts}, \"args\": {{\"{}\": {value}}}}}",
                s.ev.ctx,
                esc(key)
            ),
        });
    }
    // Gauge maxima become Chrome counter events at the end of the
    // timeline, so Perfetto plots them alongside the span tracks.
    let tail_ts = match trace.events().last().and_then(|s| s.wall_nanos) {
        Some(w) => format!("{:.3}", w as f64 / 1000.0),
        None => format!("{}", trace.events().len()),
    };
    for (name, max) in trace.gauges() {
        parts.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": {tail_ts}, \
             \"args\": {{\"max\": {max}}}}}",
            esc(name)
        ));
    }
    format!("[\n{}\n]\n", parts.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, span, CollectingRecorder, SpanId};

    fn sample() -> Trace {
        let rec = CollectingRecorder::new();
        {
            let _g = span(&rec, 0, SpanId::at("proto/round", 1));
            counter(&rec, 0, SpanId::at("proto/round", 1), "bits", 12);
        }
        rec.drain()
    }

    #[test]
    fn jsonl_is_deterministic_and_wall_free() {
        let a = to_jsonl(&sample());
        let b = to_jsonl(&sample());
        assert_eq!(a, b);
        assert!(!a.contains("wall_ns"));
        assert_eq!(a.lines().count(), 3, "enter + counter + exit");
        assert!(a.contains("\"kind\": \"counter\", \"key\": \"bits\", \"value\": 12"));
    }

    #[test]
    fn chrome_trace_balances_begin_end() {
        let t = sample();
        let chrome = to_chrome_trace(&t);
        assert_eq!(
            chrome.matches("\"ph\": \"B\"").count(),
            chrome.matches("\"ph\": \"E\"").count()
        );
        assert!(chrome.starts_with("[\n") && chrome.ends_with("\n]\n"));
    }

    #[test]
    fn wall_clock_mode_stamps_outside_the_event() {
        let rec = CollectingRecorder::with_wall_clock();
        counter(&rec, 0, SpanId::new("x"), "k", 1);
        let t = rec.drain();
        assert!(t.events()[0].wall_nanos.is_some());
        // The deterministic projection is identical to a stamp-free run.
        let rec2 = CollectingRecorder::new();
        counter(&rec2, 0, SpanId::new("x"), "k", 1);
        assert_eq!(t.deterministic_events(), rec2.drain().deterministic_events());
    }

    #[test]
    fn gauges_round_trip_through_both_exporters() {
        use crate::Recorder as _;
        let rec = CollectingRecorder::new();
        counter(&rec, 0, SpanId::new("x"), "k", 1);
        rec.gauge("serve/queue-depth", 3);
        rec.gauge("serve/queue-depth", 7);
        rec.gauge("serve/inflight", 2);
        let t = rec.drain();

        let jsonl = to_jsonl(&t);
        // One gauge row per name, after the event rows, max retained.
        let gauge_rows: Vec<&str> =
            jsonl.lines().filter(|l| l.contains("\"kind\": \"gauge\"")).collect();
        assert_eq!(gauge_rows.len(), 2);
        assert!(jsonl.ends_with(
            "{\"kind\": \"gauge\", \"name\": \"serve/inflight\", \"max\": 2}\n\
             {\"kind\": \"gauge\", \"name\": \"serve/queue-depth\", \"max\": 7}\n"
        ));

        let chrome = to_chrome_trace(&t);
        assert!(chrome.contains(
            "{\"name\": \"serve/queue-depth\", \"ph\": \"C\", \"pid\": 0, \"tid\": 0, \
             \"ts\": 1, \"args\": {\"max\": 7}}"
        ));
        assert!(chrome.contains("\"name\": \"serve/inflight\", \"ph\": \"C\""));

        // Reading the values back out of the trace agrees with both.
        assert_eq!(t.gauge_max("serve/queue-depth"), Some(7));
        assert_eq!(t.gauges().len(), 2);
    }

    #[test]
    fn escapes_json_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
