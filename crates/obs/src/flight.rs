//! A bounded flight recorder: the last N structured events, kept in a
//! ring buffer and dumped as JSONL for post-mortem analysis.
//!
//! The metrics registry ([`crate::MetricsRegistry`]) answers "how
//! many"; the flight recorder answers "what happened just before it
//! went wrong". It keeps a fixed-capacity ring of [`FlightEvent`]s —
//! connection lifecycle, faults, slow requests — so a panic, SIGTERM,
//! or on-demand dump can replay the recent past without unbounded
//! memory. Recording takes one short mutex hold (the ring is cold
//! relative to the per-request hot path: only notable events land
//! here), and every event carries a monotone sequence number so drops
//! are detectable: `total_recorded - len` events have scrolled off.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One structured flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number, assigned at record time.
    pub seq: u64,
    /// Event kind, e.g. `conn-open`, `conn-fault`, `slow-request`.
    pub kind: &'static str,
    /// Connection id the event belongs to (0 when not applicable).
    pub conn: u64,
    /// Request sequence number (0 when not applicable).
    pub req: u64,
    /// Short static label, e.g. a fault class or status name.
    pub label: &'static str,
    /// Free-form detail.
    pub detail: String,
    /// Nanoseconds since the recorder was created (timing data; never
    /// part of a committed artifact).
    pub wall_nanos: u64,
}

/// A fixed-capacity ring buffer of recent [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    epoch: Instant,
    total: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` events (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            epoch: Instant::now(),
            total: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<FlightEvent>> {
        match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(
        &self,
        kind: &'static str,
        conn: u64,
        req: u64,
        label: &'static str,
        detail: String,
    ) {
        let seq = self.total.fetch_add(1, Ordering::Relaxed);
        let wall_nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ev = FlightEvent { seq, kind, conn, req, label, detail, wall_nanos };
        let mut ring = self.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.lock().iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Total events ever recorded (including scrolled-off ones).
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events that have scrolled off the ring.
    pub fn dropped(&self) -> u64 {
        let len = self.len() as u64;
        self.total_recorded().saturating_sub(len)
    }

    /// The retained events as JSONL, one object per line, oldest
    /// first, prefixed by a header line recording capacity and drops.
    pub fn dump_jsonl(&self) -> String {
        let events = self.snapshot();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"flight\": \"header\", \"capacity\": {}, \"retained\": {}, \"dropped\": {}}}",
            self.cap,
            events.len(),
            self.dropped()
        );
        for ev in &events {
            let _ = writeln!(
                out,
                "{{\"seq\": {}, \"kind\": \"{}\", \"conn\": {}, \"req\": {}, \"label\": \"{}\", \
                 \"detail\": \"{}\", \"wall_ns\": {}}}",
                ev.seq,
                crate::export::esc(ev.kind),
                ev.conn,
                ev.req,
                crate::export::esc(ev.label),
                crate::export::esc(&ev.detail),
                ev.wall_nanos
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record("conn-open", i, 0, "open", String::new());
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.total_recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        // Oldest retained is seq 2 (0 and 1 scrolled off).
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
        assert_eq!(snap[2].conn, 4);
    }

    #[test]
    fn dump_is_jsonl_with_header() {
        let fr = FlightRecorder::new(8);
        fr.record("conn-fault", 1, 0, "truncated-frame", "short read \"x\"".to_string());
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"capacity\": 8"));
        assert!(lines[0].contains("\"dropped\": 0"));
        assert!(lines[1].contains("\"kind\": \"conn-fault\""));
        assert!(lines[1].contains("\"label\": \"truncated-frame\""));
        // Quotes in the detail are escaped.
        assert!(lines[1].contains("short read \\\"x\\\""));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.record("a", 0, 0, "", String::new());
        fr.record("b", 0, 0, "", String::new());
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.snapshot()[0].kind, "b");
    }
}
