//! `pdip-obs` — zero-cost structured tracing + metrics.
//!
//! Every layer of this repository that wants instrumentation (protocol
//! prover/verifier rounds, engine worker jobs, CLI audits) records
//! through one object-safe [`Recorder`] trait:
//!
//! * **spans** — enter/exit pairs keyed by a stable [`SpanId`]
//!   (`&'static str` name plus two integer coordinates such as
//!   round/node), created RAII-style via [`span`];
//! * **counters** — `(span, key, value)` triples, e.g. per-round
//!   max-label bits, via [`counter`];
//! * **duration histograms** — log2-bucketed nanosecond histograms
//!   ([`Histogram`]) keyed by span name.
//!
//! Two recorders ship with the crate. [`NoopRecorder`] is the default
//! everywhere: every method is an empty body behind an `enabled()`
//! check, so instrumented hot paths do **zero** allocations and never
//! read the clock (guarded by the counting-allocator test in
//! `tests/alloc_noop.rs`). [`CollectingRecorder`] buffers events —
//! optionally through per-worker [`BufferedRecorder`] shards merged at
//! drain — and yields a [`Trace`].
//!
//! # Determinism rules
//!
//! Traces feed committed artifacts (`results/e10_trace.*`), which must
//! be byte-identical across thread counts. Three rules make that hold:
//!
//! 1. **Stable ids, no clocks in events.** An [`Event`] is
//!    `(ctx, span, kind)` — all derived from protocol structure (job
//!    index, protocol name, round number), never from scheduling or
//!    time. Wall-clock nanoseconds live in a *separate optional field*
//!    ([`Stamped::wall_nanos`]) that deterministic consumers ignore.
//! 2. **Shard-contiguous merge.** Each worker buffers into its own
//!    shard; [`CollectingRecorder::drain`] concatenates shards and
//!    stable-sorts by `(ctx, span)`. Any one `(ctx, span)` group is
//!    produced by exactly one worker (engine job indices are unique),
//!    so within-group order is that worker's deterministic insertion
//!    order regardless of flush timing.
//! 3. **Histograms are timing data.** Duration histograms are kept
//!    apart from the event stream and must never be written into a
//!    committed artifact — stdout breakdowns only.
//!
//! Exporters: [`export::to_jsonl`] (deterministic, one event per line)
//! and [`export::to_chrome_trace`] (`chrome://tracing` / Perfetto
//! trace-event JSON, using wall stamps when captured).
//!
//! Long-lived services use the *live* side of the crate instead of
//! drained traces: [`MetricsRegistry`] — sharded atomic counters,
//! gauges, and atomic duration histograms with snapshot/delta
//! semantics and a Prometheus-style text encoder — plus
//! [`FlightRecorder`], a bounded ring of recent structured events
//! dumped as JSONL for post-mortem analysis. [`TeeRecorder`] feeds a
//! trace recorder and a live bridge from the same instrumentation
//! points.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod export;
mod flight;
mod hist;
pub mod mem;
mod metrics;
mod recorder;
mod span;
mod stopwatch;

pub use flight::{FlightEvent, FlightRecorder};
pub use hist::Histogram;
pub use mem::{
    alloc_installed, alloc_live_bytes, alloc_peak_bytes, peak_rss_bytes, reset_peak, PeakAlloc,
};
pub use metrics::{AtomicHistogram, Counter, Gauge, GaugeValue, MetricsRegistry, MetricsSnapshot};
pub use recorder::{
    BufferedRecorder, CollectingRecorder, NoopRecorder, ScopedRecorder, TeeRecorder, Trace,
};
pub use span::{counter, span, Event, EventKind, SpanGuard, SpanId, Stamped};
pub use stopwatch::Stopwatch;

/// The object-safe instrumentation sink.
///
/// All methods have no-op defaults so `impl Recorder for MyType {}` is
/// a valid disabled recorder. Call sites must gate work behind
/// [`Recorder::enabled`] (the [`span`]/[`counter`] helpers do) so a
/// disabled recorder costs one virtual call and a branch — no
/// allocation, no clock read.
pub trait Recorder: Sync {
    /// Whether events should be recorded at all. Hot paths branch on
    /// this once per span/counter.
    fn enabled(&self) -> bool {
        false
    }

    /// Nanoseconds since this recorder's epoch, or `None` when
    /// wall-clock capture is off. Wall stamps never enter the
    /// deterministic event tuple — see the crate-level rules.
    fn now(&self) -> Option<u64> {
        None
    }

    /// Record one structured event.
    fn record(&self, _ev: Event) {}

    /// Merge a worker-local buffer as one contiguous shard. The
    /// default degrades to per-event [`Recorder::record`] calls
    /// (losing shard contiguity but not data).
    fn flush_shard(&self, shard: Vec<Stamped>) {
        for s in shard {
            self.record(s.ev);
        }
    }

    /// Record an observed duration into the histogram for `name`.
    fn duration(&self, _name: &'static str, _nanos: u64) {}

    /// Record an instantaneous gauge observation (e.g. the serve queue
    /// depth at enqueue time). Collecting recorders keep the per-name
    /// maximum; like durations, gauge values are measurement data and
    /// never enter the deterministic event stream.
    fn gauge(&self, _name: &'static str, _value: u64) {}
}
