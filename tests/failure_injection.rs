//! Failure injection: every kind of transcript corruption the runtime can
//! express must be caught by the verifiers. These tests tamper with
//! otherwise-honest label assignments — swapped nodes, zeroed tags,
//! truncated structures, stale coins — and check that at least one node
//! rejects (deterministically or with overwhelming probability over
//! seeds).

use planarity_dip::dip::{LabelRound, Rejections, Tag};
use planarity_dip::field::{smallest_prime_above, Fp};
use planarity_dip::graph::gen;
use planarity_dip::graph::{Graph, RootedForest};
use planarity_dip::protocols::nesting::{self, NestingLabels};
use planarity_dip::protocols::{
    decode_parent, ForestCode, MsMsg, MultisetEq, SpanningTreeVerification, StParams,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corrupting a forest-code color must break at least one decode.
#[test]
fn forest_code_color_corruption_detected() {
    let mut rng = SmallRng::seed_from_u64(401);
    let inst = gen::planar::random_planar(30, 0.6, &mut rng);
    let f = RootedForest::bfs_spanning_tree(&inst.graph, 0);
    let mut code = ForestCode::encode(&inst.graph, &f);
    // Flip the parity of a random non-root node: its parent decode (or a
    // neighbor's) changes.
    let victim = (1..30).find(|&v| f.parent(v).is_some()).unwrap();
    code.labels[victim].odd = !code.labels[victim].odd;
    let mut broken = false;
    for v in 0..30 {
        if decode_parent(&inst.graph, &code.labels, v) != f.parent(v) {
            broken = true;
        }
    }
    assert!(broken, "parity flip must corrupt at least one decode");
}

/// The spanning-tree verifier rejects truncated structures (a subtree cut
/// off and left parentless without a root flag).
#[test]
fn spanning_tree_truncation_detected() {
    let g = Graph::from_edges(8, (0..7).map(|i| (i, i + 1)));
    let f = RootedForest::bfs_spanning_tree(&g, 0);
    let st = SpanningTreeVerification::new(StParams::for_n(8, 3, 1));
    let mut rng = SmallRng::seed_from_u64(402);
    let coins = st.draw_coins(8, &mut rng);
    let msgs = st.honest_response(&f, &coins);
    let mut rej = Rejections::new();
    for v in 0..8 {
        // Claim node 4 has no parent but is also not flagged as a root.
        let parent = if v == 4 { None } else { f.parent(v) };
        st.check(&g, v, parent, v == 0, &coins, &msgs, &mut rej);
    }
    assert!(rej.any());
}

/// The spanning-tree verifier rejects swapped depth residues.
#[test]
fn spanning_tree_swapped_messages_detected() {
    let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1)));
    let f = RootedForest::bfs_spanning_tree(&g, 0);
    let st = SpanningTreeVerification::new(StParams::for_n(10, 3, 1));
    for seed in 0..20 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let coins = st.draw_coins(10, &mut rng);
        let mut msgs = st.honest_response(&f, &coins);
        msgs.swap(3, 7);
        let mut rej = Rejections::new();
        for v in 0..10 {
            st.check(&g, v, f.parent(v), v == 0, &coins, &msgs, &mut rej);
        }
        assert!(rej.any(), "swap must be caught (seed {seed})");
    }
}

/// Multiset-equality rejects a zeroed aggregate and a replayed (stale)
/// challenge.
#[test]
fn multiset_equality_tampering_detected() {
    let f = Fp::new(smallest_prime_above(1 << 16));
    let ms = MultisetEq::new(f);
    let parent: Vec<Option<usize>> = vec![None, Some(0), Some(1), Some(2)];
    let s: Vec<Vec<u64>> = vec![vec![5], vec![6], vec![7], vec![8]];
    let s2: Vec<Vec<u64>> = vec![vec![8, 7, 6, 5], vec![], vec![], vec![]];
    let honest = |z: u64| ms.honest_response(&parent, |i| s[i].as_slice(), |i| s2[i].as_slice(), z);
    let check_all = |msgs: &Vec<MsMsg>, z: u64| {
        let mut rej = Rejections::new();
        for i in 0..4 {
            let children: Vec<usize> = if i + 1 < 4 { vec![i + 1] } else { vec![] };
            ms.check(
                i,
                i,
                parent[i],
                &children,
                &s[i],
                &s2[i],
                msgs,
                if i == 0 { Some(z) } else { None },
                &mut rej,
            );
        }
        rej.any()
    };
    let z = 4242;
    let good = honest(z);
    assert!(!check_all(&good, z));
    // Zeroed aggregate.
    let mut zeroed = good.clone();
    zeroed[2].a1 = 0;
    assert!(check_all(&zeroed, z));
    // Stale challenge: prover answers for z' != z.
    let stale = honest(z + 1);
    assert!(check_all(&stale, z));
}

/// Nesting labels: dropping a gap label, blanking `above`, or unmarking
/// the longest arc must each be rejected.
#[test]
fn nesting_label_omissions_detected() {
    let mut rng = SmallRng::seed_from_u64(404);
    let inst = gen::outerplanar::random_path_outerplanar(40, 0.8, &mut rng);
    let g = &inst.graph;
    let n = g.n();
    let mut positions = vec![0usize; n];
    for (i, &v) in inst.path.iter().enumerate() {
        positions[v] = i;
    }
    let mut is_path_edge = vec![false; g.m()];
    for w in inst.path.windows(2) {
        is_path_edge[g.edge_between(w[0], w[1]).unwrap()] = true;
    }
    let tags: Vec<Tag> = (0..n).map(|_| Tag::random(20, &mut rng)).collect();
    let honest = nesting::sweep_assign(g, &positions, &inst.path, &is_path_edge, &tags);
    let run = |labels: &NestingLabels| {
        let mut rej = Rejections::new();
        for v in 0..n {
            let p = positions[v];
            let left = (p > 0).then(|| inst.path[p - 1]);
            let right = (p + 1 < n).then(|| inst.path[p + 1]);
            let is_left = |e: usize| positions[g.edge(e).other(v)] < p;
            nesting::check_node(
                g,
                v,
                left,
                right,
                &is_path_edge,
                &is_left,
                &tags,
                labels,
                &mut rej,
            );
        }
        rej.any()
    };
    assert!(!run(&honest));
    // Drop a gap label.
    let pe = (0..g.m()).find(|&e| is_path_edge[e]).unwrap();
    let mut t1 = honest.clone();
    t1.gaps[pe] = None;
    assert!(run(&t1), "missing gap label must reject");
    // Unmark a longest arc (if the instance has one).
    if let Some(arc) = (0..g.m()).find(|&e| !is_path_edge[e]) {
        let mut t2 = honest.clone();
        if let Some(l) = t2.arcs[arc].as_mut() {
            l.longest_right_of_tail = false;
            l.longest_left_of_head = false;
        }
        assert!(run(&t2), "fully unmarked arc must reject");
    }
}

/// Generic label-swap tampering through the LabelRound helper.
#[test]
fn label_round_swaps_are_visible() {
    let round = LabelRound::new(vec![10u32, 20, 30], |&x| x as usize);
    let mut tampered = round.clone();
    tampered.swap(0, 2);
    assert_eq!(*tampered.label(0), 30);
    assert_eq!(tampered.bits(0), 30);
    assert_eq!(round.max_bits(), tampered.max_bits());
}

/// Coins must not be reusable across runs: two honest LR runs with
/// different seeds produce different transcript decisions under a stale
/// replay (spot-check via the spanning-tree verifier's root check).
#[test]
fn stale_coins_rejected_by_root_check() {
    let g = Graph::from_edges(12, (0..11).map(|i| (i, i + 1)));
    let f = RootedForest::bfs_spanning_tree(&g, 0);
    let st = SpanningTreeVerification::new(StParams::for_n(4096, 3, 1));
    let mut rng = SmallRng::seed_from_u64(405);
    let coins_a = st.draw_coins(12, &mut rng);
    let coins_b = st.draw_coins(12, &mut rng);
    // Prover answers for run A, verifier checks with run B's coins.
    let msgs = st.honest_response(&f, &coins_a);
    let mut rej = Rejections::new();
    for v in 0..12 {
        st.check(&g, v, f.parent(v), v == 0, &coins_b, &msgs, &mut rej);
    }
    // Rejected unless the root's sampled prime collided.
    let collided = coins_a[0].prime_indices == coins_b[0].prime_indices;
    assert_eq!(rej.any(), !collided);
}

/// End-to-end: random bit-level corruption of the committed path's labels
/// in the full Theorem 1.2 protocol is caught across seeds.
#[test]
fn full_protocol_rejects_random_orientation_flips() {
    use planarity_dip::protocols::{LrCheat, LrParams, LrSorting, Transport};
    let mut rng = SmallRng::seed_from_u64(406);
    let mut rejected = 0;
    let trials = 30;
    for t in 0..trials {
        let Some(no) = gen::lr::random_lr_no(60, 30, true, 1 + (t % 3) as usize, &mut rng) else {
            rejected += 1; // flips cancelled: nothing to test
            continue;
        };
        let lr = LrSorting::new(&no, LrParams::default(), Transport::Native);
        let cheat = [LrCheat::ClaimInner, LrCheat::OuterTrueIndex, LrCheat::OuterForgedIndex]
            [rng.gen_range(0..3)];
        if !lr.run(Some(cheat), t as u64).accepted() {
            rejected += 1;
        }
    }
    assert!(rejected >= trials - 2, "rejected only {rejected}/{trials}");
}
