//! Failure injection: every kind of transcript corruption the runtime can
//! express must be caught by the verifiers.
//!
//! The corruption machinery lives in `pdip_engine::chaos`: a seeded
//! [`Mutator`] stream drives one of seven [`MutatorKind`]s against a
//! [`Tamperable`] target (a sub-protocol primitive or one of the six
//! derived Theorem 1.2–1.7 protocols), and the corrupted run is
//! classified as detected / miss / unchanged. These tests route the
//! hand-written corruptions of earlier revisions through that single API
//! — same coverage, one setup — and extend it to every derived protocol.
//! Deterministic corruption classes must be caught on every seed;
//! probabilistic ones within the soundness budget ε.
//!
//! A couple of corruptions the chaos taxonomy does not model (nesting
//! label omissions, LR no-instances with orientation flips) keep their
//! direct tests at the bottom.

use pdip_engine::chaos::{
    build_target, Determinism, MutatorKind, TamperOutcome, TargetId, MUTATORS,
};
use planarity_dip::dip::{LabelRound, Rejections, Tag};
use planarity_dip::graph::gen;
use planarity_dip::protocols::nesting::{self, NestingLabels};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs every supported mutator kind on `id` over `seeds`, asserting the
/// deterministic contract (no soundness miss on any seed) for
/// deterministic kinds and returning `(detected, missed)` totals over the
/// probabilistic ones.
fn sweep_target(id: TargetId, n: usize, seeds: std::ops::Range<u64>) -> (u64, u64) {
    let target = build_target(id, n, 0xFA11);
    let (mut detected, mut missed) = (0u64, 0u64);
    let mut effective = 0u64;
    for kind in MUTATORS {
        if !target.supports(kind) {
            continue;
        }
        for seed in seeds.clone() {
            match target.run_mutated(kind, seed) {
                TamperOutcome::Detected { .. } => {
                    effective += 1;
                    if target.determinism(kind) == Determinism::Probabilistic {
                        detected += 1;
                    }
                }
                TamperOutcome::Miss => {
                    effective += 1;
                    assert_ne!(
                        target.determinism(kind),
                        Determinism::Deterministic,
                        "{}: deterministic kind {} missed on seed {seed}",
                        target.target_name(),
                        kind.name(),
                    );
                    missed += 1;
                }
                TamperOutcome::Unchanged => {}
            }
        }
    }
    assert!(effective > 0, "{}: every mutation was a semantic no-op", target.target_name());
    (detected, missed)
}

/// Forest-code corruptions (color flips, label swaps, truncation,
/// re-rooting, out-of-range colors, parity off-by-ones) all break at
/// least one decode — coin-independent, so every seed must catch them.
#[test]
fn forest_code_corruptions_detected() {
    sweep_target(TargetId::ForestCode, 30, 0..8);
}

/// The spanning-tree verifier catches structural corruptions (truncated
/// subtrees, swapped residues, fake roots) deterministically and stale
/// coins within ε.
#[test]
fn spanning_tree_corruptions_detected() {
    let (detected, missed) = sweep_target(TargetId::SpanningTree, 24, 0..12);
    // StaleCoins is the only probabilistic kind here: a replayed
    // transcript survives only if the fresh prime draw collides.
    assert!(
        detected >= 3 * (detected + missed) / 4,
        "stale-coin replays slipped past too often: {detected} detected, {missed} missed"
    );
}

/// Multiset equality rejects zeroed aggregates, swapped partials, stale
/// challenges and off-by-one sums on every seed.
#[test]
fn multiset_equality_tampering_detected() {
    sweep_target(TargetId::MultisetEq, 16, 0..8);
}

/// The LR-sorting core (§3–5) catches transcript corruptions within its
/// soundness budget and never panics on any of them.
#[test]
fn lr_sorting_corruptions_detected_within_budget() {
    let (detected, missed) = sweep_target(TargetId::LrSorting, 32, 0..8);
    assert!(
        2 * detected >= detected + missed,
        "LR corruption detection below 1/2: {detected} detected, {missed} missed"
    );
}

/// Every one of the six derived protocols (Theorems 1.2–1.7) rejects its
/// supported corruptions: witness-path tampering for path-outerplanarity,
/// added chords / rewired edges for the hereditary families, rotation
/// tampering for the embedding-based protocols. Deterministic classes
/// never miss; probabilistic ones stay within budget in aggregate.
#[test]
fn all_derived_protocols_reject_corruptions() {
    let derived = [
        TargetId::PathOuterplanar,
        TargetId::Outerplanar,
        TargetId::EmbeddedPlanarity,
        TargetId::Planarity,
        TargetId::SeriesParallel,
        TargetId::Treewidth2,
    ];
    let (mut detected, mut missed) = (0u64, 0u64);
    for id in derived {
        let (d, m) = sweep_target(id, 32, 0..4);
        detected += d;
        missed += m;
    }
    assert!(
        detected >= 3 * (detected + missed) / 5,
        "derived-protocol detection below 3/5: {detected} detected, {missed} missed"
    );
}

/// The taxonomy itself: every target supports at least one kind, and no
/// target panics on an unsupported kind either (the harness skips them,
/// but direct calls must still be safe to classify).
#[test]
fn every_target_names_its_surface() {
    for id in [TargetId::ForestCode, TargetId::SpanningTree, TargetId::MultisetEq] {
        let t = build_target(id, 16, 7);
        assert!(MUTATORS.iter().any(|&k| t.supports(k)));
        assert_eq!(TargetId::from_name(t.target_name()), Some(id));
    }
    assert_eq!(MutatorKind::from_name("stale-coins"), Some(MutatorKind::StaleCoins));
}

/// Nesting labels: dropping a gap label, blanking `above`, or unmarking
/// the longest arc must each be rejected. (Not modelled by the chaos
/// taxonomy — nesting labels are checked inside the LR round structure.)
#[test]
fn nesting_label_omissions_detected() {
    let mut rng = SmallRng::seed_from_u64(404);
    let inst = gen::outerplanar::random_path_outerplanar(40, 0.8, &mut rng);
    let g = &inst.graph;
    let n = g.n();
    let mut positions = vec![0usize; n];
    for (i, &v) in inst.path.iter().enumerate() {
        positions[v] = i;
    }
    let mut is_path_edge = vec![false; g.m()];
    for w in inst.path.windows(2) {
        is_path_edge[g.edge_between(w[0], w[1]).unwrap()] = true;
    }
    let tags: Vec<Tag> = (0..n).map(|_| Tag::random(20, &mut rng)).collect();
    let honest = nesting::sweep_assign(g, &positions, &inst.path, &is_path_edge, &tags);
    let run = |labels: &NestingLabels| {
        let mut rej = Rejections::new();
        for v in 0..n {
            let p = positions[v];
            let left = (p > 0).then(|| inst.path[p - 1]);
            let right = (p + 1 < n).then(|| inst.path[p + 1]);
            let is_left = |e: usize| positions[g.edge(e).other(v)] < p;
            nesting::check_node(
                g,
                v,
                left,
                right,
                &is_path_edge,
                &is_left,
                &tags,
                labels,
                &mut rej,
            );
        }
        rej.any()
    };
    assert!(!run(&honest));
    // Drop a gap label.
    let pe = (0..g.m()).find(|&e| is_path_edge[e]).unwrap();
    let mut t1 = honest.clone();
    t1.gaps[pe] = None;
    assert!(run(&t1), "missing gap label must reject");
    // Unmark a longest arc (if the instance has one).
    if let Some(arc) = (0..g.m()).find(|&e| !is_path_edge[e]) {
        let mut t2 = honest.clone();
        if let Some(l) = t2.arcs[arc].as_mut() {
            l.longest_right_of_tail = false;
            l.longest_left_of_head = false;
        }
        assert!(run(&t2), "fully unmarked arc must reject");
    }
}

/// Generic label-swap tampering through the LabelRound helper.
#[test]
fn label_round_swaps_are_visible() {
    let round = LabelRound::new(vec![10u32, 20, 30], |&x| x as usize);
    let mut tampered = round.clone();
    tampered.swap(0, 2);
    assert_eq!(*tampered.label(0), 30);
    assert_eq!(tampered.bits(0), 30);
    assert_eq!(round.max_bits(), tampered.max_bits());
}

/// End-to-end: random bit-level corruption of the committed path's labels
/// in the full Theorem 1.2 protocol is caught across seeds. (Chaos
/// targets corrupt honest yes-instance transcripts; this one drives the
/// cheating prover on genuine no-instances instead.)
#[test]
fn full_protocol_rejects_random_orientation_flips() {
    use planarity_dip::protocols::{LrCheat, LrParams, LrSorting, Transport};
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(406);
    let mut rejected = 0;
    let trials = 30;
    for t in 0..trials {
        let Some(no) = gen::lr::random_lr_no(60, 30, true, 1 + (t % 3) as usize, &mut rng) else {
            rejected += 1; // flips cancelled: nothing to test
            continue;
        };
        let lr = LrSorting::new(&no, LrParams::default(), Transport::Native);
        let cheat = [LrCheat::ClaimInner, LrCheat::OuterTrueIndex, LrCheat::OuterForgedIndex]
            [rng.gen_range(0..3)];
        if !lr.run(Some(cheat), t as u64).accepted() {
            rejected += 1;
        }
    }
    assert!(rejected >= trials - 2, "rejected only {rejected}/{trials}");
}
