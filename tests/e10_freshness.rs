//! Freshness and envelope guard for the committed `results/e10_trace.json`.
//!
//! The E10 trace audit is deterministic (honest-only grid, streamed
//! per-job seeds, record-ordered event aggregation), so the committed
//! artifact must stay consistent with the code that claims to produce
//! it. This guard checks the committed report without re-running the
//! full n=1024 grid:
//!
//! * the schema parses, the header says all-pass with zero audit errors,
//! * the cell grid covers exactly families × sizes, each cell once,
//! * every cell's envelope matches `envelope_bits(family, n)` and its
//!   round maxima sit inside it, and
//! * the smallest cell is re-executed with the committed seeds and its
//!   traced bits must match the committed numbers byte-for-byte.
//!
//! Regenerate with `cargo run --release --bin pdip -- trace` after any
//! change to the protocols, the instrumentation, or the engine seeds.

use pdip_engine::{envelope_bits, execute_job_traced, Family, TraceSpec, WorkerScratch, FAMILIES};
use pdip_obs::{CollectingRecorder, SpanId};

fn committed_json() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e10_trace.json"))
        .expect("results/e10_trace.json must be committed; regenerate with `pdip trace`")
}

/// Extracts `"key": value` from one JSON line (the E10 schema is
/// line-oriented: one cell object per line, scalar headers one per line).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start =
        line.find(&pat).unwrap_or_else(|| panic!("missing field {key:?} in: {line}")) + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(['}', ','])
        .filter(|_| !rest.starts_with('['))
        .unwrap_or_else(|| rest.find(']').map(|i| i + 1).unwrap_or(rest.len()));
    rest[..end].trim().trim_matches('"')
}

/// Parses a `[a, b, c]` list field into integers.
fn int_list(raw: &str) -> Vec<u64> {
    raw.trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("integer list entry"))
        .collect()
}

fn cell_lines(json: &str) -> Vec<&str> {
    json.lines().filter(|l| l.trim_start().starts_with("{\"family\"")).collect()
}

#[test]
fn committed_e10_schema_parses_and_passes() {
    let json = committed_json();
    assert!(json.contains("\"experiment\": \"e10-trace\""));
    for key in ["\"sizes\":", "\"trials_per_cell\":", "\"base_seed\":"] {
        assert!(json.contains(key), "header field {key} missing");
    }
    assert!(json.contains("\"all_pass\": true"), "committed audit must pass");
    assert!(json.contains("\"audit_errors\": 0"), "committed audit must be error-free");

    for line in cell_lines(&json) {
        assert_eq!(field(line, "pass"), "true", "failing cell committed: {line}");
        let n: usize = field(line, "n").parse().unwrap();
        let family = FAMILIES
            .iter()
            .copied()
            .find(|f| f.name() == field(line, "family"))
            .unwrap_or_else(|| panic!("unknown family in: {line}"));
        let envelope: u64 = field(line, "envelope_bits").parse().unwrap();
        assert_eq!(
            envelope,
            envelope_bits(family, n) as u64,
            "cell envelope drifted from envelope_bits(): {line}"
        );
        let round_max = int_list(field(line, "round_max_bits"));
        let proof: u64 = field(line, "proof_size_bits").parse().unwrap();
        assert!(!round_max.is_empty(), "cell with no rounds: {line}");
        assert!(proof > 0, "cell with zero proof bits: {line}");
        for (i, &bits) in round_max.iter().enumerate() {
            assert!(
                bits <= envelope,
                "round {} max {} exceeds envelope {}: {line}",
                i + 1,
                bits,
                envelope
            );
        }
        assert_eq!(
            round_max.iter().copied().max().unwrap(),
            proof,
            "proof size must be the max over rounds: {line}"
        );
    }
}

#[test]
fn committed_e10_covers_the_full_grid() {
    let json = committed_json();
    let spec = TraceSpec::full();
    let cells: Vec<(String, usize)> = cell_lines(&json)
        .iter()
        .map(|l| (field(l, "family").to_string(), field(l, "n").parse().unwrap()))
        .collect();
    for &f in &FAMILIES {
        for &n in &spec.sizes {
            let pair = (f.name().to_string(), n);
            assert_eq!(
                cells.iter().filter(|c| **c == pair).count(),
                1,
                "cell {pair:?} missing or duplicated in committed report"
            );
        }
    }
    assert_eq!(cells.len(), FAMILIES.len() * spec.sizes.len(), "unexpected extra cells");
    for line in cell_lines(&json) {
        assert_eq!(
            field(line, "runs").parse::<u64>().unwrap(),
            spec.trials,
            "cell run count drifted from TraceSpec::full(): {line}"
        );
    }
}

/// Re-executes the committed grid's smallest cell (path-outerplanarity,
/// n = 64) with the exact per-job seeds of the full sweep and compares
/// the traced bits against the committed numbers.
#[test]
fn smallest_cell_replays_to_committed_bits() {
    let json = committed_json();
    let spec = TraceSpec::full();
    let sweep = spec.sweep();
    let n0 = *spec.sizes.iter().min().unwrap();
    let jobs: Vec<_> = sweep
        .expand()
        .into_iter()
        .filter(|j| j.coords.family == Family::PathOuterplanar && j.coords.n == n0)
        .collect();
    assert_eq!(jobs.len() as u64, spec.trials);

    let rec = CollectingRecorder::new();
    let mut scratch = WorkerScratch::new();
    let mut round_max = vec![0u64; 3];
    let mut proof = 0u64;
    let mut coins = 0u64;
    for job in &jobs {
        let r = execute_job_traced(&sweep, job, &mut scratch, &rec).expect("job quarantined");
        assert!(r.accepted, "honest run rejected during replay");
        proof = proof.max(r.proof_size_bits as u64);
        coins = coins.max(r.coin_bits as u64);
    }
    let trace = rec.drain();
    for job in &jobs {
        for (i, slot) in round_max.iter_mut().enumerate() {
            let id = SpanId::at(Family::PathOuterplanar.name(), (i + 1) as u64);
            *slot = (*slot).max(trace.counter_total(job.coords.index, id, "round_max_bits"));
        }
    }

    let line = cell_lines(&json)
        .into_iter()
        .find(|l| {
            field(l, "family") == Family::PathOuterplanar.name() && field(l, "n") == n0.to_string()
        })
        .expect("smallest cell missing from committed report");
    assert_eq!(
        int_list(field(line, "round_max_bits")),
        round_max,
        "replayed round maxima diverge from committed artifact — regenerate with `pdip trace`"
    );
    assert_eq!(field(line, "proof_size_bits").parse::<u64>().unwrap(), proof);
    assert_eq!(field(line, "coin_bits").parse::<u64>().unwrap(), coins);
}
