//! Freshness and invariant guard for the committed `results/e11_scale.json`.
//!
//! The E11 scaling table is the repository's bounded-memory claim: a
//! multi-million-node instance is streamed block by block and verified
//! shard-by-shard, with the allocator high-water growing like the shard
//! size, not like `n`. The committed artifact must stay consistent with
//! the code that claims to produce it. This guard checks the committed
//! report without re-running the 10^7-node grid:
//!
//! * the schema parses, the header says all-pass with a *tracked* and
//!   sublinear allocator peak,
//! * the row grid is exactly `ScaleSpec::full().sizes` and reaches at
//!   least 10^7 nodes,
//! * every row passes: accepted, thread-invariant digest, proof bits
//!   inside `envelope_bits(Planarity, n)`, overlap audits and the
//!   non-planar probe green where they ran,
//! * the bounded-memory ratio is re-derived from the committed peaks
//!   (not just trusted from the `rss_sublinear` flag), and
//! * the smallest row is re-verified from its seeds and its digest must
//!   match the committed one byte-for-byte.
//!
//! Regenerate with `cargo run --release --bin pdip -- scale` after any
//! change to the protocols, the streaming generator, the shard combiner,
//! or the seed derivation.

use pdip_engine::{digest_result, envelope_bits, sub_seed, verify_stream, Family, ScaleSpec};
use pdip_graph::{StreamMode, StreamSkeleton};

fn committed_json() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e11_scale.json"))
        .expect("results/e11_scale.json must be committed; regenerate with `pdip scale`")
}

/// Extracts `"key": value` from one JSON line (the E11 schema is
/// line-oriented: one row object per line, scalar headers one per line).
/// Handles the nested `overlap` object by cutting values at the first
/// `,`/`}` only outside brackets.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start =
        line.find(&pat).unwrap_or_else(|| panic!("missing field {key:?} in: {line}")) + pat.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            '}' | ',' if depth == 0 => return rest[..i].trim().trim_matches('"'),
            _ => {}
        }
    }
    rest.trim().trim_matches('"')
}

fn row_lines(json: &str) -> Vec<&str> {
    json.lines().filter(|l| l.trim_start().starts_with("{\"n\"")).collect()
}

#[test]
fn committed_e11_schema_parses_and_passes() {
    let json = committed_json();
    assert!(json.contains("\"experiment\": \"e11-scale\""));
    for key in ["\"sizes\":", "\"shard_n\":", "\"base_seed\":", "\"envelope_slope\":"] {
        assert!(json.contains(key), "header field {key} missing");
    }
    assert!(json.contains("\"all_pass\": true"), "committed audit must pass");
    assert!(
        json.contains("\"rss_tracked\": true"),
        "committed artifact must come from the pdip binary (tracking allocator installed)"
    );
    assert!(json.contains("\"rss_sublinear\": true"), "bounded-memory gate must hold");

    for line in row_lines(&json) {
        assert_eq!(field(line, "pass"), "true", "failing row committed: {line}");
        assert_eq!(field(line, "accepted"), "true", "rejected honest row committed: {line}");
        assert_eq!(
            field(line, "thread_invariant"),
            "true",
            "thread-variant digest committed: {line}"
        );
        let n: usize = field(line, "actual_n").parse().unwrap();
        let proof: usize = field(line, "proof_size_bits").parse().unwrap();
        let envelope: usize = field(line, "envelope_bits").parse().unwrap();
        assert_eq!(
            envelope,
            envelope_bits(Family::Planarity, n),
            "row envelope drifted from envelope_bits(): {line}"
        );
        assert!(proof > 0 && proof <= envelope, "proof bits outside envelope: {line}");
        let overlap = field(line, "overlap");
        if overlap != "null" {
            for sub in ["extract_identical", "monolithic_agrees", "groups_invariant"] {
                assert_eq!(field(overlap, sub), "true", "overlap audit failed: {line}");
            }
        }
        let probe = field(line, "nonplanar_rejected");
        assert_ne!(probe, "false", "soundness probe accepted a non-planar stream: {line}");
    }
}

#[test]
fn committed_e11_covers_the_full_grid_to_ten_million() {
    let json = committed_json();
    let spec = ScaleSpec::full();
    let ns: Vec<usize> = row_lines(&json).iter().map(|l| field(l, "n").parse().unwrap()).collect();
    assert_eq!(ns, spec.sizes, "row grid drifted from ScaleSpec::full()");
    assert!(
        ns.iter().copied().max().unwrap_or(0) >= 10_000_000,
        "the scaling claim requires at least a 10^7-node row"
    );
    // Shard size bounds the memory unit: every row must report shards of
    // (at most) the spec's target plus the generator's block slack.
    for line in row_lines(&json) {
        let max_shard: usize = field(line, "max_shard_n").parse().unwrap();
        assert!(max_shard <= 2 * spec.shard_n, "a shard outgrew the configured bound: {line}");
    }
}

/// Re-derives the bounded-memory ratio from the committed allocator
/// peaks instead of trusting the `rss_sublinear` flag: across the grid's
/// 1000x growth in `n`, the allocator high-water may grow at most a
/// quarter as fast.
#[test]
fn committed_allocator_peaks_are_sublinear_in_n() {
    let json = committed_json();
    let rows: Vec<(u64, u64)> = row_lines(&json)
        .iter()
        .map(|l| {
            let peak = field(l, "alloc_peak_bytes");
            assert_ne!(peak, "null", "untracked row in committed artifact: {l}");
            (field(l, "n").parse().unwrap(), peak.parse().unwrap())
        })
        .collect();
    let (n0, p0) = rows[0];
    let (n1, p1) = *rows.last().unwrap();
    assert!(n1 > n0 && p0 > 0, "degenerate grid in committed artifact");
    let mem_growth = p1 as f64 / p0 as f64;
    let n_growth = n1 as f64 / n0 as f64;
    assert!(
        mem_growth <= n_growth / 4.0,
        "allocator peak grew {mem_growth:.2}x over a {n_growth:.0}x n growth — memory is not \
         bounded by the shard size"
    );
}

/// Streams the committed grid's smallest row from its seeds and checks
/// the outcome digest against the committed one. Any drift in the
/// generator, the planarity protocol, the combiner, or the seed
/// derivation shows up here as a digest mismatch.
#[test]
fn smallest_row_replays_to_committed_digest() {
    let json = committed_json();
    let spec = ScaleSpec::full();
    let n0 = *spec.sizes.iter().min().unwrap();
    let line = row_lines(&json)
        .into_iter()
        .find(|l| field(l, "n") == n0.to_string())
        .expect("smallest row missing from committed report");

    let skel = StreamSkeleton::new(spec.stream_spec(n0, StreamMode::Planar));
    assert_eq!(field(line, "actual_n").parse::<usize>().unwrap(), skel.total_n);
    assert_eq!(field(line, "shards").parse::<usize>().unwrap(), skel.shard_count());
    let run_base = sub_seed(skel.spec.seed, pdip_engine::seed::labels::RUN);
    let res = verify_stream(&skel, 1, run_base);
    assert!(res.accepted(), "honest replay of the smallest row rejected");
    assert_eq!(
        format!("{:016x}", digest_result(&res)),
        field(line, "digest"),
        "replayed digest diverges from committed artifact — regenerate with `pdip scale`"
    );
    assert_eq!(field(line, "proof_size_bits").parse::<usize>().unwrap(), res.stats.proof_size());
    assert_eq!(field(line, "coin_bits").parse::<usize>().unwrap(), res.stats.coin_bits);
}
