//! Freshness and soundness guard for the committed `results/e9_chaos.json`.
//!
//! The E9 chaos sweep is deterministic (counter-mode SplitMix64 streams,
//! thread-count-invariant aggregation), so the committed artifact must
//! stay consistent with the code that claims to produce it. This guard
//! checks the committed report without re-running the full grid:
//!
//! * the schema parses and every header field is present,
//! * the cell grid covers exactly the supported (target, mutator) pairs,
//! * every deterministic corruption class has detection rate 1.0 with
//!   zero misses, every probabilistic one meets its threshold, and
//! * the sweep recorded zero panics and an overall pass.
//!
//! Regenerate with `cargo run --release --bin pdip -- chaos` after any
//! change to the protocols, the mutators, or the harness seeds.

use pdip_engine::chaos::{build_target, MUTATORS, TARGETS};

fn committed_json() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e9_chaos.json"))
        .expect("results/e9_chaos.json must be committed; regenerate with `pdip chaos`")
}

/// Extracts `"key": value` from one JSON line (the E9 schema is
/// line-oriented: one cell object per line, scalar headers one per line).
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start =
        line.find(&pat).unwrap_or_else(|| panic!("missing field {key:?} in: {line}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"')
}

#[test]
fn committed_e9_schema_parses_and_passes() {
    let json = committed_json();
    assert!(json.contains("\"experiment\": \"e9-chaos\""));
    for key in ["\"n\":", "\"trials_per_cell\":", "\"base_seed\":", "\"prob_threshold\":"] {
        assert!(json.contains(key), "header field {key} missing");
    }
    assert!(json.contains("\"zero_panics\": true"), "committed sweep must be panic-free");
    assert!(json.contains("\"all_pass\": true"), "committed sweep must pass every cell");

    for line in json.lines().filter(|l| l.trim_start().starts_with("{\"target\"")) {
        // Every cell carries the full schema and its own pass verdict.
        let class = field(line, "class");
        let missed: u64 = field(line, "missed").parse().unwrap();
        let panicked: u64 = field(line, "panicked").parse().unwrap();
        let rate: f64 = field(line, "rate").parse().unwrap();
        let threshold: f64 = field(line, "threshold").parse().unwrap();
        assert_eq!(field(line, "pass"), "true", "failing cell committed: {line}");
        assert_eq!(panicked, 0, "panicking cell committed: {line}");
        match class {
            "deterministic" => {
                assert_eq!(missed, 0, "deterministic class missed a corruption: {line}");
                assert!((rate - 1.0).abs() < 1e-9, "deterministic rate below 1.0: {line}");
            }
            "probabilistic" => {
                assert!(rate + 1e-9 >= threshold, "probabilistic rate under threshold: {line}");
            }
            other => panic!("unknown detection class {other:?}: {line}"),
        }
    }
}

#[test]
fn committed_e9_covers_the_full_supported_grid() {
    let json = committed_json();
    let cells: Vec<(String, String)> = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"target\""))
        .map(|l| (field(l, "target").to_string(), field(l, "mutator").to_string()))
        .collect();
    assert!(!cells.is_empty(), "no cells in committed report");

    // Exactly the supported (target, mutator) pairs, each exactly once,
    // and every mutator class exercised somewhere.
    let mut expected = Vec::new();
    for &id in &TARGETS {
        let target = build_target(id, 8, 0);
        for kind in MUTATORS {
            if target.supports(kind) {
                expected.push((id.name().to_string(), kind.name().to_string()));
            }
        }
    }
    for pair in &expected {
        assert_eq!(
            cells.iter().filter(|c| *c == pair).count(),
            1,
            "cell {pair:?} missing or duplicated in committed report"
        );
    }
    assert_eq!(cells.len(), expected.len(), "committed report has unexpected extra cells");
    for kind in MUTATORS {
        assert!(
            cells.iter().any(|(_, m)| m == kind.name()),
            "mutator class {} absent from committed report",
            kind.name()
        );
    }
}
