//! Malformed-input hardening of the wire decoder: chaos-corrupted blobs
//! (truncations, bit flips, oversized length fields) must always yield a
//! structured [`planarity_dip::wire::WireError`] — never a panic, and
//! never an allocation sized by attacker-controlled counts.

use pdip_engine::chaos::Mutator;
use pdip_engine::{YesInstance, FAMILIES};
use planarity_dip::protocols::{PopParams, Transport};
use planarity_dip::wire::{
    fault_class, fnv1a64, read_frame, read_frame_limited, write_frame, Transcript, WireInstance,
};
use std::io::Cursor;

fn family_blob(fi: usize, seed: u64) -> Vec<u8> {
    let inst = match YesInstance::generate(FAMILIES[fi], 24, seed) {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        YesInstance::Op(i) => WireInstance::Op(i),
        YesInstance::Emb(i) => WireInstance::Emb(i),
        YesInstance::Pl(i) => WireInstance::Pl(i),
        YesInstance::Spa(i) => WireInstance::Spa(i),
        YesInstance::Tw2(i) => WireInstance::Tw2(i),
    };
    Transcript::record(inst, PopParams::default(), Transport::Simulated, 0, seed, seed ^ 7).encode()
}

/// Recomputes the checksum trailer over a corrupted body so decoding
/// proceeds past the integrity check and into field validation — the
/// adversarial case the caps and index checks exist for.
fn resign(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let ck = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&ck.to_le_bytes());
}

#[test]
fn truncation_at_every_cut_is_a_structured_error() {
    for fi in 0..FAMILIES.len() {
        let bytes = family_blob(fi, 50 + fi as u64);
        for cut in (0..bytes.len()).step_by(13).chain([bytes.len() - 1]) {
            assert!(
                Transcript::decode(&bytes[..cut]).is_err(),
                "family {fi}: truncation at {cut} must not decode"
            );
        }
    }
}

#[test]
fn bit_flips_never_decode_or_panic() {
    for fi in 0..FAMILIES.len() {
        let bytes = family_blob(fi, 80 + fi as u64);
        let mut m = Mutator::new(0xf11_u64 + fi as u64);
        for _ in 0..200 {
            let mut bad = bytes.clone();
            let i = m.index(bad.len());
            bad[i] ^= m.bit(8) as u8;
            assert!(
                Transcript::decode(&bad).is_err(),
                "family {fi}: checksum must catch a single-bit flip at {i}"
            );
        }
    }
}

#[test]
fn oversized_section_length_is_rejected_before_allocation() {
    // Header is magic(4) + version(2) + family/prover/transport(3); the
    // first section's length field sits at offset 10. Stamp it to
    // u32::MAX and re-sign so the parser actually reads it: the section
    // cap must reject it as a structured error, not attempt a 4 GiB
    // read or allocation.
    let mut bytes = family_blob(0, 99);
    bytes[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
    resign(&mut bytes);
    let err = Transcript::decode(&bytes).expect_err("oversized section must not decode");
    let msg = err.to_string();
    assert!(!msg.is_empty());
}

#[test]
fn resigned_corruptions_are_handled_without_panicking() {
    // Checksum-valid corruption sweep: flips, truncate-and-resign, and
    // 0xff stamps anywhere in the body. Decoding may legitimately
    // succeed (e.g. a flip inside an opaque round payload) — then the
    // corruption must instead be caught or tolerated by replay
    // verification. Nothing may panic.
    for fi in 0..FAMILIES.len() {
        let bytes = family_blob(fi, 120 + fi as u64);
        let mut m = Mutator::new(0x5e51_u64 + fi as u64);
        for round in 0..60u32 {
            let mut bad = bytes.clone();
            match round % 3 {
                0 => {
                    let i = m.index(bad.len() - 8);
                    bad[i] ^= m.bit(8) as u8;
                }
                1 => {
                    let keep = 9 + m.index(bad.len() - 17);
                    bad.truncate(keep + 8);
                }
                _ => {
                    let i = m.index(bad.len().saturating_sub(12));
                    for b in bad.iter_mut().skip(i).take(4) {
                        *b = 0xff;
                    }
                }
            }
            resign(&mut bad);
            if let Ok(t) = Transcript::decode(&bad) {
                // Well-formed after corruption: verification must still
                // run to a verdict (accept, reject, or replay mismatch).
                let _ = t.verify();
            }
        }
    }
}

// --- Frame layer: the length-prefixed envelope the serve front-end ---
// --- speaks. Corruption at this layer must be a structured I/O error --
// --- with a stable fault class, and must never reach the decoder. ------

#[test]
fn framed_transcript_roundtrips_through_the_wire_envelope() {
    let blob = family_blob(0, 210);
    let mut stream = Vec::new();
    write_frame(&mut stream, &blob).expect("frame");
    write_frame(&mut stream, &blob).expect("frame");
    let mut cur = Cursor::new(stream);
    for _ in 0..2 {
        let payload = read_frame(&mut cur).expect("read").expect("frame present");
        assert_eq!(payload, blob);
        let _ = Transcript::decode(&payload).expect("framed blob decodes unchanged").verify();
    }
    assert!(read_frame(&mut cur).expect("read").is_none(), "clean EOF at frame boundary");
}

#[test]
fn half_written_frames_are_truncated_frame_faults_at_every_cut() {
    // A transcript blob cut mid-frame — the envelope, not the decoder,
    // must catch it, and always with the same stable fault class.
    let blob = family_blob(1, 220);
    let mut stream = Vec::new();
    write_frame(&mut stream, &blob).expect("frame");
    let mut m = Mutator::new(0xf8a3);
    for _ in 0..40 {
        let cut = 1 + m.index(stream.len() - 1);
        let err = read_frame(&mut Cursor::new(&stream[..cut]))
            .expect_err("half-written frame must not yield a payload");
        assert_eq!(fault_class(err.kind()), "truncated-frame", "cut at {cut}");
    }
}

#[test]
fn corrupt_length_headers_never_reach_the_transcript_decoder() {
    // Stamp the 4-byte length header with adversarial values: anything
    // beyond the cap is rejected before allocation; anything under it
    // merely truncates/extends the payload, which the checksum catches.
    let blob = family_blob(2, 230);
    let cap = blob.len() + 64;
    let mut m = Mutator::new(0x1e47);
    for _ in 0..60 {
        let mut stream = Vec::new();
        write_frame(&mut stream, &blob).expect("frame");
        let stamp = m.next_u64() as u32;
        stream[..4].copy_from_slice(&stamp.to_le_bytes());
        match read_frame_limited(&mut Cursor::new(&stream), cap) {
            Ok(Some(payload)) => {
                // A shorter declared length re-frames a prefix; the
                // transcript layer must reject it structurally.
                if payload.len() != blob.len() {
                    assert!(Transcript::decode(&payload).is_err(), "stamp {stamp}");
                }
            }
            Ok(None) => panic!("a stamped header is never a clean EOF"),
            Err(e) => {
                let class = fault_class(e.kind());
                assert!(
                    class == "oversized-frame" || class == "truncated-frame",
                    "stamp {stamp}: unexpected class {class}"
                );
            }
        }
    }
}
