//! Smoke tests for the `pdip` command-line driver.

use std::process::Command;

fn pdip() -> Command {
    // Use the binary cargo built for this test profile.
    Command::new(env!("CARGO_BIN_EXE_pdip"))
}

#[test]
fn families_lists_all_six() {
    let out = pdip().arg("families").output().expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "path-outerplanarity",
        "outerplanarity",
        "embedded-planarity",
        "planarity",
        "series-parallel",
        "treewidth-2",
    ] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
}

#[test]
fn run_accepts_honest_instance() {
    let out = pdip()
        .args(["run", "path-outerplanarity", "--n", "128", "--seed", "3"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict    : ACCEPT"), "{text}");
    assert!(text.contains("rounds     : 5"));
}

#[test]
fn run_rejects_cheating_prover() {
    let out = pdip()
        .args(["run", "series-parallel", "--n", "64", "--cheat", "0", "--seed", "5"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict    : REJECT"), "{text}");
}

#[test]
fn size_sweep_prints_rows() {
    let out = pdip()
        .args(["size", "treewidth-2", "--from", "6", "--to", "8"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 4, "{text}");
}
