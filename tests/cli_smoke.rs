//! Smoke tests for the `pdip` command-line driver.

use std::process::Command;

fn pdip() -> Command {
    // Use the binary cargo built for this test profile.
    Command::new(env!("CARGO_BIN_EXE_pdip"))
}

#[test]
fn families_lists_all_six() {
    let out = pdip().arg("families").output().expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "path-outerplanarity",
        "outerplanarity",
        "embedded-planarity",
        "planarity",
        "series-parallel",
        "treewidth-2",
    ] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
}

#[test]
fn run_accepts_honest_instance() {
    let out = pdip()
        .args(["run", "path-outerplanarity", "--n", "128", "--seed", "3"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict    : ACCEPT"), "{text}");
    assert!(text.contains("rounds     : 5"));
}

#[test]
fn run_rejects_cheating_prover() {
    let out = pdip()
        .args(["run", "series-parallel", "--n", "64", "--cheat", "0", "--seed", "5"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verdict    : REJECT"), "{text}");
}

#[test]
fn sweep_writes_deterministic_outputs() {
    let dir = std::env::temp_dir().join("pdip_sweep_smoke");
    let base = dir.join("sweep");
    let run = |threads: &str, out: &std::path::Path| {
        let st = pdip()
            .args(["sweep", "--families", "series-parallel", "--n-from", "32", "--n-to", "32"])
            .args(["--trials", "2", "--seed", "11", "--threads", threads])
            .arg("--out")
            .arg(out)
            .output()
            .expect("run pdip sweep");
        assert!(st.status.success(), "{}", String::from_utf8_lossy(&st.stderr));
        String::from_utf8_lossy(&st.stdout).to_string()
    };
    let serial_out = base.with_file_name("serial");
    let parallel_out = base.with_file_name("parallel");
    let text = run("1", &serial_out);
    assert!(text.contains("[engine]"), "{text}");
    run("3", &parallel_out);
    let a = std::fs::read(serial_out.with_extension("json")).expect("serial json");
    let b = std::fs::read(parallel_out.with_extension("json")).expect("parallel json");
    assert_eq!(a, b, "sweep JSON must be byte-identical across thread counts");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bench_graph_smoke_writes_parseable_snapshot() {
    let out_path = std::env::temp_dir().join("pdip_bench_graph_smoke.json");
    let out = pdip()
        .args(["bench-graph", "--smoke", "--out"])
        .arg(&out_path)
        .output()
        .expect("run pdip bench-graph");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for name in
        ["edge_between_dense", "is_planar", "biconnected", "spanning_forest", "planarity_round"]
    {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
    let doc = std::fs::read_to_string(&out_path).expect("bench-graph snapshot");
    let entries = pdip_bench::graphbench::parse_graphbench_json(&doc).expect("snapshot parses");
    assert!(entries.len() >= 5, "expected all five benchmarks, got {}", entries.len());
    assert!(doc.contains("\"mode\": \"smoke\""));
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn trace_smoke_passes_audit_and_quiet_silences_stdout() {
    let out_path = std::env::temp_dir().join("pdip_trace_smoke");
    let out = pdip()
        .args(["trace", "--smoke", "--threads", "2", "--quiet", "--out"])
        .arg(&out_path)
        .output()
        .expect("run pdip trace");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "--quiet must silence stdout");
    let txt = std::fs::read_to_string(out_path.with_extension("txt")).expect("trace txt");
    assert!(txt.contains("# all-pass=true audit-errors=0"), "{txt}");
    let json = std::fs::read_to_string(out_path.with_extension("json")).expect("trace json");
    assert!(json.contains("\"experiment\": \"e10-trace\""));
    assert!(json.contains("\"all_pass\": true"));
    let _ = std::fs::remove_file(out_path.with_extension("txt"));
    let _ = std::fs::remove_file(out_path.with_extension("json"));
}

#[test]
fn prove_verify_roundtrip_and_exit_codes() {
    let dir = std::env::temp_dir().join("pdip_wire_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Honest transcript: prove writes it, verify accepts with exit 0.
    let good = dir.join("good.transcript");
    let out = pdip()
        .args(["prove", "outerplanarity", "--n", "24", "--gen-seed", "4", "--seed", "9", "--out"])
        .arg(&good)
        .output()
        .expect("run pdip prove");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let v = pdip().arg("verify").arg(&good).output().expect("run pdip verify");
    assert_eq!(v.status.code(), Some(0), "{}", String::from_utf8_lossy(&v.stdout));
    assert!(String::from_utf8_lossy(&v.stdout).contains("ACCEPT"));

    // Cheat transcript: well-formed, verifier rejects → exit 3.
    let cheat = dir.join("cheat.transcript");
    let out = pdip()
        .args(["prove", "series-parallel", "--n", "48", "--prover", "0", "--seed", "3", "--out"])
        .arg(&cheat)
        .output()
        .expect("run pdip prove");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let v = pdip().arg("verify").arg(&cheat).output().expect("run pdip verify");
    assert_eq!(v.status.code(), Some(3), "rejected-but-well-formed must exit 3");

    // Corrupted blob: malformed → exit 4, distinct from rejection.
    let mut bytes = std::fs::read(&good).expect("read transcript");
    bytes[20] ^= 0x40;
    let bad = dir.join("bad.transcript");
    std::fs::write(&bad, &bytes).expect("write corrupted transcript");
    let v = pdip().arg("verify").arg(&bad).output().expect("run pdip verify");
    assert_eq!(v.status.code(), Some(4), "malformed must exit 4");
    assert!(String::from_utf8_lossy(&v.stderr).contains("malformed"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_stdin_answers_ping_and_shutdown_frames() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = pdip()
        .args(["serve", "--stdin"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pdip serve --stdin");
    // Two frames: ping (tag 0x02), shutdown (tag 0x7f).
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(&[1, 0, 0, 0, 0x02, 1, 0, 0, 0, 0x7f])
        .expect("write frames");
    let out = child.wait_with_output().expect("pdip serve exits");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Response frames are len(4) + seq(8) + status(1) + detail-len(4).
    assert_eq!(out.stdout.len(), 2 * 17, "two empty-detail response frames");
    assert_eq!(out.stdout[12], 6, "first response is pong");
    assert_eq!(out.stdout[17 + 12], 5, "second response is shutdown-ack");
}

#[test]
fn serve_tcp_and_client_end_to_end() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = std::env::temp_dir().join("pdip_serve_client_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Materialize one honest and one corrupted transcript.
    let good = dir.join("good.transcript");
    let out = pdip()
        .args(["prove", "path-outerplanarity", "--n", "24", "--seed", "6", "--out"])
        .arg(&good)
        .output()
        .expect("run pdip prove");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let mut bytes = std::fs::read(&good).expect("read transcript");
    bytes[16] ^= 0x20;
    let bad = dir.join("bad.transcript");
    std::fs::write(&bad, &bytes).expect("write corrupted transcript");

    // A concurrent server on an ephemeral port; the listening line
    // carries the port the OS picked.
    let mut server = pdip()
        .args(["serve", "--port", "0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pdip serve");
    let mut lines = BufReader::new(server.stdout.take().expect("server stdout")).lines();
    let banner = lines.next().expect("listening line").expect("readable stdout");
    let port = banner.rsplit(':').next().expect("port in banner");
    assert!(banner.contains("listening on"), "{banner}");

    // Honest transcript → accept → exit 0.
    let c = pdip().args(["client", "--port", port]).arg(&good).output().expect("run pdip client");
    assert_eq!(c.status.code(), Some(0), "{}", String::from_utf8_lossy(&c.stderr));
    assert!(String::from_utf8_lossy(&c.stdout).contains("accept"));

    // Mixed batch with a corrupted blob → malformed verdict → exit 3,
    // and the final run also drains the server with --shutdown.
    let c = pdip()
        .args(["client", "--port", port, "--shutdown"])
        .arg(&good)
        .arg(&bad)
        .output()
        .expect("run pdip client");
    assert_eq!(c.status.code(), Some(3), "{}", String::from_utf8_lossy(&c.stderr));
    let text = String::from_utf8_lossy(&c.stdout);
    assert!(text.contains("malformed"), "{text}");
    assert!(text.contains("server stats:"), "{text}");

    // The shutdown frame must have drained the server to a clean exit.
    let st = server.wait().expect("server exits after drain");
    assert!(st.success(), "server exit: {st:?}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_subcommand_and_json_client_read_live_metrics() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = std::env::temp_dir().join("pdip_stats_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let good = dir.join("good.transcript");
    let out = pdip()
        .args(["prove", "path-outerplanarity", "--n", "24", "--seed", "6", "--out"])
        .arg(&good)
        .output()
        .expect("run pdip prove");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let mut server = pdip()
        .args(["serve", "--port", "0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pdip serve");
    let mut lines = BufReader::new(server.stdout.take().expect("server stdout")).lines();
    let banner = lines.next().expect("listening line").expect("readable stdout");
    let port = banner.rsplit(':').next().expect("port in banner");

    // Verify one honest transcript so the counters are non-trivial.
    let c = pdip().args(["client", "--port", port]).arg(&good).output().expect("run pdip client");
    assert_eq!(c.status.code(), Some(0), "{}", String::from_utf8_lossy(&c.stderr));

    // Prometheus-style snapshot over the live stats frame.
    let s = pdip().args(["stats", "--port", port]).output().expect("run pdip stats");
    assert!(s.status.success(), "{}", String::from_utf8_lossy(&s.stderr));
    let text = String::from_utf8_lossy(&s.stdout);
    assert!(text.contains("requests_total{status=\"accept\"} 1"), "{text}");
    assert!(text.contains("latency_verify_ns_count 1"), "{text}");
    assert!(text.contains("connections_total"), "{text}");

    // JSON snapshot form of the same registry.
    let s = pdip().args(["stats", "--port", port, "--json"]).output().expect("run pdip stats");
    assert!(s.status.success(), "{}", String::from_utf8_lossy(&s.stderr));
    let text = String::from_utf8_lossy(&s.stdout);
    assert!(text.contains("\"counters\""), "{text}");
    assert!(text.contains("proof_size_bits_total"), "{text}");

    // Flight-recorder event ring as JSONL.
    let s = pdip().args(["stats", "--port", port, "--flight"]).output().expect("run pdip stats");
    assert!(s.status.success(), "{}", String::from_utf8_lossy(&s.stderr));
    let text = String::from_utf8_lossy(&s.stdout);
    assert!(text.contains("\"kind\": \"conn-open\""), "{text}");

    // --shutdown --json: exactly one JSON object on stdout carrying
    // the server's final drained stats.
    let c = pdip()
        .args(["client", "--port", port, "--shutdown", "--json"])
        .arg(&good)
        .output()
        .expect("run pdip client");
    assert_eq!(c.status.code(), Some(0), "{}", String::from_utf8_lossy(&c.stderr));
    let text = String::from_utf8_lossy(&c.stdout);
    let line = text.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "not a single JSON object: {text}");
    assert_eq!(text.lines().count(), 1, "--json must print exactly one line: {text}");
    assert!(line.contains("\"accept\": 2"), "{text}");
    assert!(line.contains("\"drained\": \"ok\""), "{text}");

    let st = server.wait().expect("server exits after drain");
    assert!(st.success(), "server exit: {st:?}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn size_sweep_prints_rows() {
    let out = pdip()
        .args(["size", "treewidth-2", "--from", "6", "--to", "8"])
        .output()
        .expect("run pdip");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 4, "{text}");
}
