//! Property-based tests at the protocol level: completeness across all six
//! families under random instance shapes, seeds, transports and
//! amplification; determinism of repeated runs with equal seeds; and
//! proof-size monotonicity sanity.

use planarity_dip::protocols::{PopParams, Transport};
use proptest::prelude::*;

use pdip_bench::{no_instance, Family, YesInstance, FAMILIES};

fn family_strategy() -> impl Strategy<Value = Family> {
    prop::sample::select(FAMILIES.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Perfect completeness holds for every family, size and seed.
    #[test]
    fn completeness_everywhere(
        fam in family_strategy(),
        n in 8usize..200,
        gen_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        let inst = YesInstance::generate(fam, n, gen_seed);
        inst.with_protocol(PopParams::default(), Transport::Native, |p| {
            prop_assert!(p.is_yes_instance(), "generator must produce yes-instances");
            let res = p.run_honest(run_seed);
            prop_assert!(res.accepted(), "{}: {:?}", p.name(), res.rejections.first());
            prop_assert_eq!(res.stats.rounds, 5);
            Ok(())
        })?;
    }

    /// Runs are deterministic in the seed: equal seeds give equal stats
    /// and verdicts.
    #[test]
    fn runs_are_seed_deterministic(
        fam in family_strategy(),
        n in 8usize..120,
        seed in 0u64..500,
    ) {
        let inst = YesInstance::generate(fam, n, 77);
        inst.with_protocol(PopParams::default(), Transport::Native, |p| {
            let a = p.run_honest(seed);
            let b = p.run_honest(seed);
            prop_assert_eq!(a.accepted(), b.accepted());
            prop_assert_eq!(a.stats.proof_size(), b.stats.proof_size());
            prop_assert_eq!(&a.stats.per_round_max_bits, &b.stats.per_round_max_bits);
            Ok(())
        })?;
    }

    /// Soundness smoke: for a random family and cheat, acceptance over a
    /// small batch of runs never exceeds 50% (the theorem bound is
    /// 1/polylog n, far below 1/2).
    #[test]
    fn cheats_never_beat_a_coin(
        fam in family_strategy(),
        strat_pick in 0usize..8,
        seed in 0u64..200,
    ) {
        let inst = no_instance(fam, 80, seed);
        inst.with_protocol(PopParams::default(), Transport::Native, |p| {
            prop_assert!(!p.is_yes_instance());
            let s = strat_pick % p.cheat_names().len();
            let accepted = (0..8).filter(|&t| p.run_cheat(s, seed * 31 + t).accepted()).count();
            prop_assert!(accepted <= 4, "{} cheat {} accepted {accepted}/8", p.name(), s);
            Ok(())
        })?;
    }

    /// The simulated edge-label transport preserves completeness for the
    /// planar families.
    #[test]
    fn simulated_transport_completeness(
        fam in prop::sample::select(vec![
            Family::PathOuterplanar,
            Family::Outerplanar,
            Family::EmbeddedPlanarity,
            Family::Planarity,
        ]),
        n in 8usize..100,
        seed in 0u64..300,
    ) {
        let inst = YesInstance::generate(fam, n, seed);
        inst.with_protocol(PopParams::default(), Transport::Simulated, |p| {
            let res = p.run_honest(seed ^ 0x5555);
            prop_assert!(res.accepted(), "{}: {:?}", p.name(), res.rejections.first());
            Ok(())
        })?;
    }
}
