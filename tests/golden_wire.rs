//! Golden-file pin of wire format v1: the committed
//! `results/golden_v1.transcript` must keep decoding, re-encoding
//! byte-identically, and replay-verifying to ACCEPT. Any codec change
//! that breaks this either corrupted the format accidentally or
//! requires a format-version bump plus a regenerated golden file
//! (`pdip prove path-outerplanarity --n 32 --gen-seed 7 --seed 11
//! --out results/golden_v1.transcript`) — see DESIGN.md §5.

use planarity_dip::wire::{Transcript, VerifyOutcome, FORMAT_VERSION, MAGIC};

fn golden() -> Vec<u8> {
    std::fs::read(concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_v1.transcript"))
        .expect("results/golden_v1.transcript must be committed")
}

#[test]
fn golden_header_is_pinned() {
    let bytes = golden();
    assert_eq!(&bytes[..4], &MAGIC, "magic");
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), FORMAT_VERSION, "format version");
    assert_eq!(bytes[6], 1, "family tag: path-outerplanarity");
    assert_eq!(bytes[7], 0, "prover: honest");
    assert_eq!(bytes[8], 0, "transport: native");
}

#[test]
fn golden_decodes_and_reencodes_byte_identically() {
    let bytes = golden();
    let t = Transcript::decode(&bytes).expect("golden transcript must decode");
    assert_eq!(t.instance.family_name(), "path-outerplanarity");
    assert_eq!(t.instance.n(), 32);
    assert_eq!(t.gen_seed, 7);
    assert_eq!(t.run_seed, 11);
    assert!(t.accepted, "golden records an accepting run");
    assert_eq!(t.encode(), bytes, "golden must re-encode byte-identically");
}

#[test]
fn golden_replay_verifies_to_accept() {
    let t = Transcript::decode(&golden()).expect("golden transcript must decode");
    match t.verify() {
        VerifyOutcome::Accepted(res) => assert_eq!(res.stats, t.stats),
        other => panic!("golden transcript must replay-verify to ACCEPT, got {other:?}"),
    }
}
