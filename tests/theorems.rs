//! End-to-end integration tests: one per theorem of the paper.
//!
//! Each test checks the three claims of the theorem statement on real
//! instances: round count (5), perfect completeness (every yes-instance
//! accepted with the honest prover), and soundness (no-instances rejected
//! under every implemented cheating strategy, at the 1/polylog n level).

use planarity_dip::dip::DipProtocol;
use planarity_dip::graph::gen;
use planarity_dip::protocols::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn soundness_ok(p: &dyn DipProtocol, trials: usize, tolerance: f64) {
    assert!(!p.is_yes_instance());
    for s in 0..p.cheat_names().len() {
        let mut accepted = 0;
        for t in 0..trials {
            if p.run_cheat(s, 7_000 + t as u64).accepted() {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / trials as f64;
        assert!(
            rate <= tolerance,
            "{} cheat '{}' accepted at rate {rate}",
            p.name(),
            p.cheat_names()[s]
        );
    }
}

#[test]
fn theorem_1_2_path_outerplanarity() {
    let mut rng = SmallRng::seed_from_u64(201);
    // Completeness.
    for n in [3usize, 17, 80, 250] {
        let g = gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
        let inst = PopInstance { graph: g.graph, witness: Some(g.path), is_yes: true };
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..5 {
            let r = p.run_honest(seed);
            assert!(r.accepted(), "n={n}: {:?}", r.rejections.first());
        }
    }
    // Soundness on a non-Hamiltonian instance and a crossing instance.
    let g = gen::no_instances::outerplanar_no_hamiltonian_path(4, &mut rng);
    let inst = PopInstance { graph: g, witness: None, is_yes: false };
    let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 40, 0.15);
}

#[test]
fn theorem_1_3_outerplanarity() {
    let mut rng = SmallRng::seed_from_u64(202);
    for (n, blocks) in [(12usize, 3usize), (60, 6)] {
        let g = gen::outerplanar::random_outerplanar(n, blocks, 0.5, &mut rng);
        let inst = OpInstance { graph: g.graph, is_yes: true };
        let p = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..4 {
            let r = p.run_honest(seed);
            assert!(r.accepted(), "{:?}", r.rejections.first());
        }
    }
    let g = gen::no_instances::planar_not_outerplanar(14, &mut rng);
    let inst = OpInstance { graph: g, is_yes: false };
    let p = Outerplanarity::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 40, 0.15);
}

#[test]
fn theorem_1_4_embedded_planarity() {
    let mut rng = SmallRng::seed_from_u64(203);
    for n in [6usize, 30, 100] {
        let g = gen::planar::random_planar(n, 0.6, &mut rng);
        let inst = EmbInstance { graph: g.graph, rho: g.rho, is_yes: true };
        let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..4 {
            let r = p.run_honest(seed);
            assert!(r.accepted(), "n={n}: {:?}", r.rejections.first());
        }
    }
    let bad = gen::planar::scrambled_embedding(30, &mut rng);
    let inst = EmbInstance { graph: bad.graph, rho: bad.rho, is_yes: false };
    let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 40, 0.15);
}

#[test]
fn theorem_1_5_planarity() {
    let mut rng = SmallRng::seed_from_u64(204);
    for n in [6usize, 40, 120] {
        let g = gen::planar::random_planar(n, 0.5, &mut rng);
        let inst = PlInstance { graph: g.graph, witness_rho: Some(g.rho), is_yes: true };
        let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..4 {
            assert!(p.run_honest(seed).accepted(), "n = {n}");
        }
    }
    let g = gen::no_instances::nonplanar_with_gadget(20, 2, true, &mut rng);
    let inst = PlInstance { graph: g, witness_rho: None, is_yes: false };
    let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 30, 0.15);
}

#[test]
fn theorem_1_6_series_parallel() {
    let mut rng = SmallRng::seed_from_u64(205);
    for size in [2usize, 20, 80] {
        let g = gen::sp::random_series_parallel(size, &mut rng);
        let inst = SpaInstance { graph: g.graph, is_yes: true };
        let p = SeriesParallel::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..4 {
            let r = p.run_honest(seed);
            assert!(r.accepted(), "size={size}: {:?}", r.rejections.first());
        }
    }
    let g = gen::no_instances::tw2_violator(3, 2, &mut rng);
    let inst = SpaInstance { graph: g, is_yes: false };
    let p = SeriesParallel::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 30, 0.15);
}

#[test]
fn theorem_1_7_treewidth_2() {
    let mut rng = SmallRng::seed_from_u64(206);
    for (blocks, bs) in [(2usize, 8usize), (5, 5)] {
        let g = gen::sp::random_treewidth2(blocks, bs, &mut rng);
        let inst = Tw2Instance { graph: g.graph, is_yes: true };
        let p = Treewidth2::new(&inst, PopParams::default(), Transport::Native);
        assert_eq!(p.rounds(), 5);
        for seed in 0..4 {
            let r = p.run_honest(seed);
            assert!(r.accepted(), "{:?}", r.rejections.first());
        }
    }
    let g = gen::no_instances::tw2_violator(4, 1, &mut rng);
    let inst = Tw2Instance { graph: g, is_yes: false };
    let p = Treewidth2::new(&inst, PopParams::default(), Transport::Native);
    soundness_ok(&p, 30, 0.15);
}

#[test]
fn theorem_1_8_lower_bound_mechanism() {
    // Forgery threshold grows with n; full-width names reject crossings.
    let t1 = lower_bound::forgery_threshold(512);
    let t2 = lower_bound::forgery_threshold(8192);
    assert!(t1 >= 4 && t2 >= t1 + 3, "t(512)={t1}, t(8192)={t2}");
    assert!(lower_bound::full_width_rejects_crossing(512));
}

#[test]
fn proof_sizes_separate_dip_from_pls() {
    // The headline: O(log log n) interactive proofs vs Θ(log n) PLS.
    let mut rng = SmallRng::seed_from_u64(207);
    let mut dip_sizes = Vec::new();
    let mut pls_sizes = Vec::new();
    for n in [1usize << 8, 1 << 12, 1 << 15] {
        let g = gen::outerplanar::random_path_outerplanar(n, 0.5, &mut rng);
        let inst =
            PopInstance { graph: g.graph.clone(), witness: Some(g.path.clone()), is_yes: true };
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        dip_sizes.push(p.run_honest(1).stats.proof_size());
        let pls = pls_baseline::PlsPathOuterplanar {
            graph: &g.graph,
            witness: Some(&g.path),
            is_yes: true,
        };
        pls_sizes.push(pls.run().stats.proof_size());
    }
    // PLS grows linearly in log n (~9 bits per doubling of log n); the
    // DIP grows with log log n. Compare both relative and absolute slopes
    // — the asymptotic separation is in the growth, not in the constants
    // (with our constant factors the absolute crossover extrapolates to
    // n ≈ 2^30; see EXPERIMENTS.md E1).
    let dip_growth = dip_sizes[2] as f64 / dip_sizes[0] as f64;
    let pls_growth = pls_sizes[2] as f64 / pls_sizes[0] as f64;
    assert!(
        dip_growth < pls_growth,
        "dip {dip_sizes:?} (x{dip_growth:.2}) vs pls {pls_sizes:?} (x{pls_growth:.2})"
    );
    assert!(
        dip_sizes[2] - dip_sizes[0] < pls_sizes[2] - pls_sizes[0],
        "dip slope {dip_sizes:?} vs pls slope {pls_sizes:?}"
    );
}

#[test]
fn simulated_transport_matches_native_verdicts() {
    let mut rng = SmallRng::seed_from_u64(208);
    for _ in 0..5 {
        let g = gen::outerplanar::random_path_outerplanar(60, 0.7, &mut rng);
        let inst = PopInstance { graph: g.graph, witness: Some(g.path), is_yes: true };
        let seed = rng.gen();
        let native = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        let sim = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Simulated);
        assert!(native.run_honest(seed).accepted());
        assert!(sim.run_honest(seed).accepted());
    }
}
