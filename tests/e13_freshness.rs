//! Freshness and invariant guard for the committed
//! `results/e13_serve_chaos.json`.
//!
//! E13 is the serve front-end's robustness claim: under deliberate
//! connection-layer faults (mid-frame disconnects, truncated and
//! oversized frames, stalled writers, panic payloads, busy storms) the
//! concurrent server never leaks a panic, classifies every fault as a
//! structured per-connection error, keeps victim connections unharmed,
//! answers every accepted request across a drain, and produces
//! thread-count-invariant responses. The committed artifact must stay
//! consistent with the code that claims to produce it; this guard
//! checks it without re-running the whole chaos grid:
//!
//! * the schema parses and the audit header says PASS with zero
//!   escaped panics,
//! * every fault-class cell passed, confirmed exactly its expected
//!   fault count, and kept all victim requests clean,
//! * the busy-storm, drain, and determinism sections satisfy their
//!   conservation laws (rejected + verified = submitted; completed =
//!   accepted; digests identical across thread counts),
//! * the determinism digest is **replayed**: a live single-threaded
//!   server re-verifies the same request mix and must reproduce the
//!   committed digest byte-for-byte, and
//! * `rps` — the one timing field — merely parses and is positive; it
//!   is never byte-compared.
//!
//! Regenerate with `cargo run --release --bin pdip -- serve-chaos
//! --smoke` after any change to the serve front-end, the frame layer,
//! or the wire codec.

use pdip_engine::{determinism_probe, E13_SEED};

fn committed_json() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e13_serve_chaos.json"))
        .expect("results/e13_serve_chaos.json must be committed; regenerate with `pdip serve-chaos --smoke`")
}

/// Extracts `"key": value` from one JSON line (the E13 schema is
/// line-oriented: one cell object per line, nested sections on single
/// lines). Values are cut at the first `,`/`}` outside brackets.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start =
        line.find(&pat).unwrap_or_else(|| panic!("missing field {key:?} in: {line}")) + pat.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            '}' | ',' if depth == 0 => return rest[..i].trim().trim_matches('"'),
            _ => {}
        }
    }
    rest.trim().trim_matches('"')
}

fn section<'a>(json: &'a str, key: &str) -> &'a str {
    json.lines()
        .find(|l| l.trim_start().starts_with(&format!("\"{key}\"")))
        .unwrap_or_else(|| panic!("missing section {key:?}"))
}

fn cell_lines(json: &str) -> Vec<&str> {
    json.lines().filter(|l| l.trim_start().starts_with("{\"class\"")).collect()
}

#[test]
fn committed_e13_schema_parses_and_passes() {
    let json = committed_json();
    assert!(json.contains("\"experiment\": \"e13-serve-chaos\""));
    assert_eq!(field(section(&json, "seed"), "seed"), format!("{:#x}", E13_SEED));
    assert!(json.contains("\"passed\": true\n"), "committed audit must pass");
    assert_eq!(
        field(section(&json, "escaped_panics"), "escaped_panics"),
        "0",
        "a panic escaped a server thread in the committed run"
    );
}

#[test]
fn every_fault_class_cell_is_clean() {
    let json = committed_json();
    let cells = cell_lines(&json);
    let classes: Vec<&str> = cells.iter().map(|l| field(l, "class")).collect();
    assert_eq!(
        classes,
        vec![
            "mid-frame-disconnect",
            "truncated-frame",
            "garbage-interleaved",
            "stalled-writer",
            "oversized-length",
            "panic-blob",
            "busy-storm",
        ],
        "fault-class grid drifted"
    );
    // The four wire-level classes must account exactly one structured
    // connection fault per trial; the application-level classes
    // (garbage frames, panic payloads, busy storms) must cause none.
    let wire_fault_classes =
        ["mid-frame-disconnect", "truncated-frame", "stalled-writer", "oversized-length"];
    for line in cells {
        assert_eq!(field(line, "passed"), "true", "failing cell committed: {line}");
        let trials: u64 = field(line, "trials").parse().unwrap();
        assert!(trials >= 2, "degenerate cell (fewer than 2 trials): {line}");
        let conn_faults: u64 = field(line, "conn_faults").parse().unwrap();
        let class = field(line, "class");
        let want_faults = if wire_fault_classes.contains(&class) { trials } else { 0 };
        assert_eq!(
            conn_faults, want_faults,
            "fault accounting does not match the class contract: {line}"
        );
        assert_eq!(field(line, "expected"), trials.to_string(), "expected != trials: {line}");
        assert_eq!(
            field(line, "confirmed"),
            field(line, "expected"),
            "an attack trial went unconfirmed: {line}"
        );
        assert_eq!(
            field(line, "victim_clean"),
            field(line, "victim_requests"),
            "cross-connection damage: a victim saw a non-accept verdict: {line}"
        );
    }
}

#[test]
fn busy_storm_conserves_every_request() {
    let json = committed_json();
    let s = section(&json, "busy_storm");
    let submitted: u64 = field(s, "submitted").parse().unwrap();
    let queue_cap: u64 = field(s, "queue_cap").parse().unwrap();
    let busy: u64 = field(s, "busy").parse().unwrap();
    let verified: u64 = field(s, "verified").parse().unwrap();
    assert_eq!(busy + verified, submitted, "a storm request vanished unanswered");
    assert!(busy > 0, "the storm never overflowed the queue — not a backpressure test");
    assert!(verified >= queue_cap, "fewer verdicts than the queue could hold");
}

#[test]
fn drain_completed_every_accepted_request() {
    let json = committed_json();
    let s = section(&json, "drain");
    let requests: u64 = field(s, "requests").parse().unwrap();
    let completed: u64 = field(s, "completed").parse().unwrap();
    assert!(requests > 0, "degenerate drain probe");
    assert_eq!(completed, requests, "graceful drain lost an accepted request");
    assert_eq!(field(s, "stats_ok"), "true", "final stats frame missing or not drained=ok");
}

/// Replays the determinism probe at one worker thread against a live
/// server and compares the response-record digest with the committed
/// one. Any drift in the serve pipeline, the frame layer, the wire
/// codec, or the protocols shows up here as a digest mismatch.
#[test]
fn determinism_digest_replays_against_a_live_server() {
    let json = committed_json();
    let s = section(&json, "determinism");
    assert_eq!(field(s, "identical"), "true", "thread-variant responses committed");
    assert_eq!(field(s, "threads"), "[1, 4]", "determinism grid drifted");
    let requests: u64 = field(s, "requests").parse().unwrap();
    let (digest, replayed_requests) =
        determinism_probe(E13_SEED, 1).expect("determinism replay against a live server");
    assert_eq!(replayed_requests as u64, requests, "request mix drifted");
    assert_eq!(
        format!("{digest:016x}"),
        field(s, "digest"),
        "replayed digest diverges from committed artifact — regenerate with `pdip serve-chaos --smoke`"
    );
}

#[test]
fn throughput_is_reported_and_positive() {
    // rps is wall-clock data: assert it parses and is positive, nothing
    // more. Byte-comparing it would make the artifact machine-dependent.
    let json = committed_json();
    let s = section(&json, "throughput");
    assert!(field(s, "requests").parse::<u64>().unwrap() > 0);
    assert!(field(s, "rps").parse::<f64>().unwrap() > 0.0, "zero measured throughput");
}
