//! Property-based tests (proptest) over the substrate and the protocols'
//! core invariants.

use planarity_dip::dip::Rejections;
use planarity_dip::field::{multiset_poly_eval, smallest_prime_above, Fp};
use planarity_dip::graph::gen;
use planarity_dip::graph::{
    degeneracy_ordering, is_outerplanar, is_planar, is_properly_nested, Graph, RootedForest,
};
use planarity_dip::protocols::{decode_children, decode_parent, ForestCode, MultisetEq};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated planar instances always pass the left-right test, and
    /// their embeddings are valid; adding an edge to a triangulation makes
    /// it non-planar.
    #[test]
    fn planarity_test_vs_generators(seed in 0u64..10_000, n in 4usize..60) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = gen::planar::random_triangulation(n, &mut rng);
        prop_assert!(is_planar(&inst.graph));
        prop_assert!(inst.rho.is_planar_embedding(&inst.graph));
        // A maximal planar graph plus any missing edge is non-planar.
        let mut g = inst.graph.clone();
        let mut found = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    found = Some((u, v));
                    break 'outer;
                }
            }
        }
        if let Some((u, v)) = found {
            g.add_edge(u, v);
            prop_assert!(!is_planar(&g));
        }
    }

    /// Outerplanar generators produce outerplanar graphs; planar
    /// generators stay planar under random edge deletion (minor-closed).
    #[test]
    fn generator_families_are_sound(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let o = gen::outerplanar::random_outerplanar(24, 4, 0.5, &mut rng);
        prop_assert!(is_outerplanar(&o.graph));
        let p = gen::planar::random_planar(24, 0.5, &mut rng);
        prop_assert!(is_planar(&p.graph));
    }

    /// Forest-code round trip on arbitrary spanning trees of random
    /// planar graphs.
    #[test]
    fn forest_code_roundtrip(seed in 0u64..10_000, root in 0usize..20) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = gen::planar::random_planar(20, 0.6, &mut rng);
        let root = root % inst.graph.n();
        let f = RootedForest::bfs_spanning_tree(&inst.graph, root);
        let code = ForestCode::encode(&inst.graph, &f);
        for v in 0..inst.graph.n() {
            prop_assert_eq!(decode_parent(&inst.graph, &code.labels, v), f.parent(v));
            let mut dec = decode_children(&inst.graph, &code.labels, v);
            let mut want = f.children(v).to_vec();
            dec.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(dec, want);
        }
    }

    /// Multiset-equality: equal multisets always accepted; one changed
    /// element rejected except with probability deg/p.
    #[test]
    fn multiset_equality_invariants(
        elems in prop::collection::vec(0u64..1000, 1..20),
        z in 0u64..65_521,
        delta in 1u64..999,
    ) {
        let f = Fp::new(smallest_prime_above(1 << 16));
        let ms = MultisetEq::new(f);
        let k = elems.len();
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        // S1 = per-node singleton; S2 = everything at the root.
        let msgs = ms.honest_response(
            &parent,
            |i| &elems[i..=i],
            |i| if i == 0 { elems.as_slice() } else { &[] },
            z % f.modulus(),
        );
        let mut rej = Rejections::new();
        for i in 0..k {
            let children: Vec<usize> = if i + 1 < k { vec![i + 1] } else { vec![] };
            let s2 = if i == 0 { elems.clone() } else { vec![] };
            ms.check(i, i, parent[i], &children, &[elems[i]], &s2, &msgs,
                     if i == 0 { Some(z % f.modulus()) } else { None }, &mut rej);
        }
        prop_assert!(!rej.any(), "equal multisets rejected");
        // Perturb one element: the root totals almost surely differ.
        let mut perturbed = elems.clone();
        perturbed[0] = (perturbed[0] + delta) % 1000;
        if multiset_poly_eval(&f, perturbed.iter().copied(), z % f.modulus())
            != multiset_poly_eval(&f, elems.iter().copied(), z % f.modulus())
        {
            // The polynomials disagree at z, so an honest aggregation of the
            // perturbed S1 against the original S2 must be caught.
            let msgs2 = ms.honest_response(
                &parent,
                |i| &perturbed[i..=i],
                |i| if i == 0 { elems.as_slice() } else { &[] },
                z % f.modulus(),
            );
            let mut rej2 = Rejections::new();
            for i in 0..k {
                let children: Vec<usize> = if i + 1 < k { vec![i + 1] } else { vec![] };
                let s2 = if i == 0 { elems.clone() } else { vec![] };
                ms.check(i, i, parent[i], &children, &[perturbed[i]], &s2, &msgs2,
                         if i == 0 { Some(z % f.modulus()) } else { None }, &mut rej2);
            }
            prop_assert!(rej2.any(), "unequal multisets accepted at a separating point");
        }
    }

    /// Degeneracy ordering really is a degeneracy ordering: every node has
    /// at most `d` later neighbors.
    #[test]
    fn degeneracy_ordering_invariant(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = gen::planar::random_planar(30, 0.8, &mut rng);
        let (order, d) = degeneracy_ordering(&inst.graph);
        prop_assert!(d <= 5, "planar degeneracy is at most 5, got {d}");
        let mut rank = vec![0usize; 30];
        for (i, &v) in order.iter().enumerate() {
            rank[v] = i;
        }
        for v in 0..30 {
            let later = inst.graph.neighbor_nodes(v).filter(|&u| rank[u] > rank[v]).count();
            prop_assert!(later <= d);
        }
    }

    /// Laminar arc families never cross, for any parameters.
    #[test]
    fn laminar_arcs_never_cross(seed in 0u64..10_000, n in 4usize..80, density in 0.0f64..1.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arcs = Vec::new();
        gen::laminar_arcs(0, n - 1, density, &mut rng, &mut arcs);
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        for (a, b) in arcs {
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        let path: Vec<usize> = (0..n).collect();
        prop_assert!(is_properly_nested(&g, &path));
    }

    /// LR-sorting completeness over random instance shapes.
    #[test]
    fn lr_sorting_randomized_completeness(seed in 0u64..5_000, n in 2usize..120) {
        use planarity_dip::protocols::{LrParams, LrSorting, Transport};
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = gen::lr::random_lr_yes(n, n / 3 + 1, true, &mut rng);
        let lr = LrSorting::new(&inst, LrParams::default(), Transport::Native);
        let res = lr.run(None, seed ^ 0xABCD);
        prop_assert!(res.accepted(), "{:?}", res.rejections.first());
    }
}
