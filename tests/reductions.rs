//! Integration tests for the reduction pipeline of Figure 2 of the paper:
//! LR-sorting → path-outerplanarity → { outerplanarity,
//! embedded planarity → planarity } and series-parallel → treewidth ≤ 2.
//! Each arrow is exercised on instances that traverse the full chain.

use planarity_dip::graph::gen;
use planarity_dip::graph::{
    is_outerplanar, is_path_outerplanar_with, is_planar, is_series_parallel,
    is_treewidth_at_most_2, nested_ear_decomposition, RootedForest,
};
use planarity_dip::protocols::build_reduction;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn lemma_7_3_equivalence_over_many_instances() {
    // ρ planar ⟺ h(G, T, ρ) path-outerplanar, both directions, across
    // trees rooted at different nodes.
    let mut rng = SmallRng::seed_from_u64(301);
    for n in [5usize, 12, 40] {
        for keep in [0.2, 0.6, 1.0] {
            let inst = gen::planar::random_planar(n, keep, &mut rng);
            for root in [0, n / 2] {
                let tree = RootedForest::bfs_spanning_tree(&inst.graph, root);
                let red = build_reduction(&inst.graph, &inst.rho, &tree, root);
                assert!(
                    is_path_outerplanar_with(&red.h, &red.path),
                    "valid embedding must reduce to nested arcs (n={n}, keep={keep})"
                );
            }
        }
    }
    for _ in 0..10 {
        let inst = gen::planar::scrambled_embedding(25, &mut rng);
        let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
        assert!(
            !is_path_outerplanar_with(&red.h, &red.path),
            "invalid embedding must reduce to a crossing"
        );
    }
}

#[test]
fn reduction_preserves_arc_count() {
    let mut rng = SmallRng::seed_from_u64(302);
    let inst = gen::planar::random_triangulation(20, &mut rng);
    let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
    let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
    let non_tree = inst.graph.m() - (inst.graph.n() - 1);
    let arcs = red.arc_of_edge.iter().filter(|a| a.is_some()).count();
    // Arcs with path-adjacent endpoints stay implicit; everything else maps.
    assert!(arcs <= non_tree);
    assert!(arcs + 6 >= non_tree, "too many arcs dropped: {arcs}/{non_tree}");
    // Every copy belongs to a real node.
    assert!(red.copy_of.iter().all(|&v| v < inst.graph.n()));
}

#[test]
fn ear_decomposition_validates_on_sp_instances() {
    let mut rng = SmallRng::seed_from_u64(303);
    for size in [1usize, 5, 25, 100] {
        for _ in 0..5 {
            let g = gen::sp::random_series_parallel(size, &mut rng);
            let d = nested_ear_decomposition(&g.graph).expect("generated SP instance");
            d.validate(&g.graph).unwrap();
        }
    }
}

#[test]
fn family_inclusions_hold_on_generated_instances() {
    // Path-outerplanar ⊂ outerplanar ⊂ planar; outerplanar ⇒ tw ≤ 2;
    // series-parallel ⇒ tw ≤ 2 and planar.
    let mut rng = SmallRng::seed_from_u64(304);
    for _ in 0..5 {
        let p = gen::outerplanar::random_path_outerplanar(40, 0.6, &mut rng);
        assert!(is_outerplanar(&p.graph));
        assert!(is_planar(&p.graph));
        assert!(is_treewidth_at_most_2(&p.graph));

        let o = gen::outerplanar::random_outerplanar(40, 5, 0.5, &mut rng);
        assert!(is_planar(&o.graph));
        assert!(is_treewidth_at_most_2(&o.graph));

        let s = gen::sp::random_series_parallel(30, &mut rng);
        assert!(is_series_parallel(&s.graph));
        assert!(is_planar(&s.graph));
        assert!(is_treewidth_at_most_2(&s.graph));
    }
}

#[test]
fn no_instance_families_fail_exactly_their_property() {
    let mut rng = SmallRng::seed_from_u64(305);
    // Planar but not outerplanar.
    let g = gen::no_instances::planar_not_outerplanar(16, &mut rng);
    assert!(is_planar(&g) && !is_outerplanar(&g));
    // Outerplanar but no Hamiltonian path.
    let g = gen::no_instances::outerplanar_no_hamiltonian_path(5, &mut rng);
    assert!(is_outerplanar(&g));
    assert!(!planarity_dip::graph::is_path_outerplanar(&g));
    // Treewidth-2 host + K4 gadget: connected, planar or not, but tw > 2.
    let g = gen::no_instances::tw2_violator(3, 1, &mut rng);
    assert!(!is_treewidth_at_most_2(&g) && !is_series_parallel(&g));
    // Non-planar gadget.
    let g = gen::no_instances::nonplanar_with_gadget(25, 1, false, &mut rng);
    assert!(!is_planar(&g));
}

#[test]
fn lr_instances_feed_path_outerplanarity() {
    // The LR-sorting sub-instance constructed by the path-outerplanarity
    // protocol matches the instance the generator would produce.
    let mut rng = SmallRng::seed_from_u64(306);
    let g = gen::outerplanar::random_path_outerplanar(50, 0.7, &mut rng);
    let mut pos = vec![0usize; 50];
    for (i, &v) in g.path.iter().enumerate() {
        pos[v] = i;
    }
    // Orienting all edges by position yields a yes LR instance.
    let orientation = planarity_dip::graph::Orientation::by(&g.graph, |u, v| pos[u] < pos[v]);
    assert!(orientation.is_acyclic(&g.graph));
    for e in 0..g.graph.m() {
        assert!(pos[orientation.tail(&g.graph, e)] < pos[orientation.head(&g.graph, e)]);
    }
}
