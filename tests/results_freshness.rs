//! Freshness guard for the committed `results/e3_soundness.txt`.
//!
//! The E3 grids are deterministic (explicit per-job seed formulas, engine
//! records re-sorted into grid order), so any cell of the committed table
//! can be reproduced exactly by re-running just that cell. This test
//! re-runs the smallest one — path-outerplanarity at n ≈ 60, every cheat,
//! 80 trials — and checks the acceptance rates against the file, failing
//! if the snapshot drifts from the code that claims to produce it.

use pdip_engine::{Engine, Family, JobCoords, Prover, ProverSpec, SeedMode, SweepSpec};

/// The E3 seed formula (mirrors `e3_soundness.rs`): instance seeds from
/// `trial * 31 + n`, run seeds from `trial` — independent of the grid
/// index, so a reduced grid reproduces the full run's cells.
fn e3_seeds(c: &JobCoords) -> (u64, u64) {
    (c.trial * 31 + c.n as u64, c.trial)
}

#[test]
fn committed_e3_table_matches_rerun_of_smallest_cell() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e3_soundness.txt"))
            .expect("results/e3_soundness.txt must be committed");

    // The path-outerplanarity rows of the first (E3) table:
    // family, cheat, rate @ n~60, rate @ n~300.
    let e3_section = text.split("E3b").next().expect("E3 section");
    let committed: Vec<(String, String)> = e3_section
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("path-outerplanarity"))
        .map(|l| {
            let cells: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(cells.len(), 4, "unexpected row shape: {l}");
            (cells[1].to_string(), cells[2].to_string())
        })
        .collect();
    assert!(!committed.is_empty(), "no path-outerplanarity rows found");

    let trials = 80u64;
    let spec = SweepSpec {
        families: vec![Family::PathOuterplanar],
        sizes: vec![60],
        provers: vec![ProverSpec::AllCheats],
        trials,
        seeds: SeedMode::Explicit(e3_seeds),
        ..SweepSpec::default()
    };
    let outcome = Engine::with_threads(1).run(&spec);
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);

    let cheat_names = Family::PathOuterplanar.cheat_names();
    assert_eq!(
        committed.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>(),
        cheat_names,
        "cheat rows in the committed table differ from the implemented cheats"
    );
    for (s, (cheat, committed_rate)) in committed.iter().enumerate() {
        let accepted =
            outcome.records.iter().filter(|r| r.prover == Prover::Cheat(s) && r.accepted).count();
        let fresh = format!("{:.1}%", 100.0 * accepted as f64 / trials as f64);
        assert_eq!(
            &fresh, committed_rate,
            "stale results/e3_soundness.txt: {cheat} @ n~60 is {fresh} on rerun; \
             regenerate with `cargo run --release -p pdip-bench --bin e3_soundness`"
        );
    }
}
