//! Freshness guard for the committed `results/bench_round.json`.
//!
//! Timings are machine-dependent, so this does not re-run the round; it
//! checks that the committed document still parses under the current
//! schema (writer and parser live together in `pdip_bench::roundbench`,
//! so drift in either fails here), that it is a full-grid run with a
//! stage breakdown covering every instrumented round stage, that the
//! baseline column still matches the pre-optimization levels pinned in
//! `COMMITTED_BASELINE_NS`, and that it witnesses the intra-job parallel
//! + lane-batched + arena round speedup.
//!
//! The witness level is >= 2x at every grid size. The ISSUE 7 target was
//! 5x @ 10^5 assuming the engine's worker pool could back intra-job
//! parallelism with real cores; the reference container is single-core
//! (`nproc` = 1), so the committed snapshot records what the lane-batched
//! LR commitments, arena-backed labels and chunked loops achieve without
//! thread-level parallelism (~2.6x @ 10^5). EXPERIMENTS.md documents the
//! gap; re-run `pdip bench-round` on a multi-core box to close it.

use pdip_bench::roundbench::{committed_baseline_ns, parse_roundbench_json, ROUND_STAGES};

#[test]
fn committed_bench_round_snapshot_parses_and_witnesses_the_speedup() {
    let doc =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/bench_round.json"))
            .expect("results/bench_round.json must be committed");
    let parsed = parse_roundbench_json(&doc).expect("committed snapshot must parse");
    assert_eq!(parsed.mode, "full", "committed snapshot must be a full run");

    // Full acceptance grid, one planarity_round entry per size, each
    // measured against the frozen pre-optimization baseline.
    for n in [1_000usize, 10_000, 100_000] {
        let (_, _, base, fast) = parsed
            .entries
            .iter()
            .find(|(name, en, _, _)| name == "planarity_round" && *en == n)
            .unwrap_or_else(|| panic!("missing planarity_round entry at n = {n}"));
        let frozen =
            committed_baseline_ns(n).unwrap_or_else(|| panic!("no committed baseline for n = {n}"));
        assert!(
            (base - frozen).abs() < 0.5,
            "baseline column at n = {n} must be the frozen pre-optimization \
             level {frozen} ns, snapshot says {base} ns"
        );
        let speedup = base / fast;
        assert!(
            speedup >= 2.0,
            "committed snapshot must witness >= 2x at n = {n}, got {speedup:.2}x"
        );
    }

    // The stage breakdown must cover every instrumented stage at every
    // grid size so the profiler view stays complete.
    for stage in ROUND_STAGES {
        for n in [1_000usize, 10_000, 100_000] {
            assert!(
                parsed.stages.iter().any(|(s, sn, _, _)| s == stage && *sn == n),
                "missing stage row {stage} at n = {n}"
            );
        }
    }
    // Shares within one size must roughly cover the round (they are
    // measured on separate profiled runs, so allow generous slack).
    for n in [1_000usize, 10_000, 100_000] {
        let total: f64 =
            parsed.stages.iter().filter(|(_, sn, _, _)| *sn == n).map(|(_, _, _, sh)| sh).sum();
        assert!(
            (0.5..=1.5).contains(&total),
            "stage shares at n = {n} should roughly sum to 1, got {total:.2}"
        );
    }
}
