//! Freshness guard for the committed `results/bench_graph.json`.
//!
//! Timings are machine-dependent, so unlike the E3 guard this does not
//! re-run the measurements; it checks that the committed document still
//! parses under the current schema (writer and parser live together in
//! `pdip_bench::graphbench`, so drift in either fails here), that it is a
//! full-grid run covering every benchmark at every acceptance-criterion
//! size, and that it still witnesses the ≥ 2× speedup the graph-substrate
//! overhaul claims.

use pdip_bench::graphbench::parse_graphbench_json;

#[test]
fn committed_bench_graph_snapshot_parses_and_covers_the_grid() {
    let doc =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/bench_graph.json"))
            .expect("results/bench_graph.json must be committed");
    let entries = parse_graphbench_json(&doc).expect("committed snapshot must parse");

    assert!(doc.contains("\"mode\": \"full\""), "committed snapshot must be a full run");
    for name in ["is_planar", "biconnected", "spanning_forest", "planarity_round"] {
        for n in [1_000usize, 10_000, 100_000] {
            assert!(
                entries.iter().any(|(en, nn, _, _)| en == name && *nn == n),
                "missing entry {name} at n = {n}"
            );
        }
    }
    assert!(
        entries.iter().any(|(name, _, _, _)| name == "edge_between_dense"),
        "missing the edge_between micro-benchmark"
    );
    let best =
        entries.iter().map(|(_, _, base, fast)| base / fast).fold(f64::NEG_INFINITY, f64::max);
    assert!(best >= 2.0, "committed snapshot must witness a >= 2x speedup, best is {best:.2}x");

    // The planarity_round rows compare warm-vs-cold scratch of the *same*
    // round code, so their internal ratio hovers near 1x by design. What
    // the committed snapshot must witness instead is that the round itself
    // got fast: before the intra-job parallel / arena round landed, the
    // honest round at n = 10^5 cost ~2.2e9 ns on the reference machine
    // (see `pdip_bench::roundbench::COMMITTED_BASELINE_NS`). The
    // regenerated snapshot must sit well below that level.
    let (_, _, _, round_1e5) = entries
        .iter()
        .find(|(name, n, _, _)| name == "planarity_round" && *n == 100_000)
        .expect("planarity_round at n = 100000 checked above");
    assert!(
        *round_1e5 < 2.0e9,
        "committed planarity_round @ 10^5 must reflect the optimized round \
         (< 2.0e9 ns warm); snapshot says {round_1e5:.0} ns"
    );
}
