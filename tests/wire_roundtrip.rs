//! Round-trip guarantees of the `pdip-wire` transcript format: for every
//! family and instance size, `decode(encode(t))` must reproduce the
//! transcript structurally AND re-encode to byte-identical output.

use pdip_engine::{no_instance, Family, YesInstance, FAMILIES};
use planarity_dip::protocols::{PopParams, Transport};
use planarity_dip::wire::{Transcript, WireInstance};
use proptest::prelude::*;

fn to_wire(inst: YesInstance) -> WireInstance {
    match inst {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        YesInstance::Op(i) => WireInstance::Op(i),
        YesInstance::Emb(i) => WireInstance::Emb(i),
        YesInstance::Pl(i) => WireInstance::Pl(i),
        YesInstance::Spa(i) => WireInstance::Spa(i),
        YesInstance::Tw2(i) => WireInstance::Tw2(i),
    }
}

/// Structural + byte round-trip of one recorded transcript.
fn assert_roundtrip(t: &Transcript) {
    let bytes = t.encode();
    let back = Transcript::decode(&bytes).expect("valid transcript must decode");
    assert_eq!(back.prover, t.prover);
    assert_eq!(back.transport, t.transport);
    assert_eq!(back.params_c, t.params_c);
    assert_eq!(back.params_st_reps, t.params_st_reps);
    assert_eq!(back.gen_seed, t.gen_seed);
    assert_eq!(back.run_seed, t.run_seed);
    assert_eq!(back.instance.family_tag(), t.instance.family_tag());
    assert_eq!(back.instance.n(), t.instance.n());
    assert_eq!(back.instance.is_yes(), t.instance.is_yes());
    assert_eq!(back.rounds.rounds.len(), t.rounds.rounds.len());
    for (a, b) in back.rounds.rounds.iter().zip(&t.rounds.rounds) {
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.payload, b.payload);
    }
    assert_eq!(back.stats, t.stats);
    assert_eq!(back.accepted, t.accepted);
    assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
}

/// The fixed matrix the format must cover: all six families at the
/// requested sizes n ∈ {1, 2, 64} (generators apply their documented
/// per-family size floors), honest prover plus cheat strategy 0.
#[test]
fn all_families_roundtrip_at_small_and_medium_sizes() {
    for (fi, fam) in FAMILIES.iter().enumerate() {
        for (ni, n) in [1usize, 2, 64].iter().enumerate() {
            let seed = 1000 + (fi as u64) * 10 + ni as u64;
            let yes = to_wire(YesInstance::generate(*fam, *n, seed));
            let honest = Transcript::record(
                yes,
                PopParams::default(),
                Transport::Simulated,
                0,
                seed,
                seed ^ 0x5eed,
            );
            assert_roundtrip(&honest);

            let no = to_wire(no_instance(*fam, (*n).max(8), seed));
            let cheat = Transcript::record(
                no,
                PopParams::default(),
                Transport::Native,
                1,
                seed,
                seed ^ 0xbad,
            );
            assert_roundtrip(&cheat);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(36))]

    /// Random (family, size-class, seed, prover) points round-trip.
    #[test]
    fn random_transcripts_roundtrip(
        fi in 0usize..6,
        ni in 0usize..3,
        seed in 0u64..100_000,
        honest in 0u8..2,
    ) {
        let fam: Family = FAMILIES[fi];
        let n = [1usize, 2, 64][ni];
        let inst = if honest == 1 {
            to_wire(YesInstance::generate(fam, n, seed))
        } else {
            to_wire(no_instance(fam, n.max(8), seed))
        };
        let prover = if honest == 1 { 0 } else { 1 };
        let t = Transcript::record(
            inst,
            PopParams::default(),
            Transport::Simulated,
            prover,
            seed,
            seed.wrapping_mul(0x9e37_79b9) | 1,
        );
        assert_roundtrip(&t);
    }
}
