//! Freshness guard for the committed `results/e12_serve.{txt,json}`.
//!
//! The E12 serve smoke is deterministic end-to-end (fixed base seed,
//! seq-sorted responses, timing-free rendering), so re-running it must
//! reproduce the committed artifacts byte-for-byte. Regenerate with
//! `cargo run --release --bin pdip -- serve --smoke` after any change to
//! the wire format, the capture emissions, or the protocols.

use pdip_engine::{run_serve_smoke, E12_SEED};

#[test]
fn committed_e12_matches_rerun_byte_for_byte() {
    let report = run_serve_smoke(&[1, 4], E12_SEED);
    assert!(report.passed, "serve smoke audit failed: {:?}", report.failures);
    assert!(report.lines.len() >= 100, "smoke must push >= 100 requests");
    assert_eq!(report.stats.panics, 0, "smoke must be panic-free");
    assert_eq!(
        report.probe_busy,
        report.probe_submitted - report.probe_queue_cap,
        "gated probe must busy-reject exactly the overflow"
    );

    let txt =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e12_serve.txt"))
            .expect(
                "results/e12_serve.txt must be committed; regenerate with `pdip serve --smoke`",
            );
    assert_eq!(txt, report.render_text(), "committed e12 text artifact is stale");

    let json =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e12_serve.json"))
            .expect(
                "results/e12_serve.json must be committed; regenerate with `pdip serve --smoke`",
            );
    assert_eq!(json, report.render_json(), "committed e12 json artifact is stale");
}
