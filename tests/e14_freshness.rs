//! Freshness and invariant guard for the committed
//! `results/e14_obs.json`.
//!
//! E14 is the observability layer's correctness claim: the live
//! metrics registry wired through the concurrent serve path loses no
//! events (every request appears in exactly the right counters and
//! latency histograms), attributes every injected connection fault to
//! its named class, counts every worker panic and busy rejection, and
//! the flight recorder replays the fault sequence in order. The
//! committed artifact must stay consistent with the code that claims
//! to produce it; this guard checks it without re-running the whole
//! fault grid:
//!
//! * the schema parses, the audit passed, and the metrics section says
//!   deterministic + monotone + conserved + stats_frame_ok,
//! * every fault class observed exactly its expected count, and the
//!   expected counts follow the injection contract (a truncated and a
//!   mid-frame disconnect per trial both classify as truncated-frame,
//!   one oversized frame and one read stall per trial, nothing else),
//! * panics, busy rejections, and verdict counts satisfy their
//!   conservation laws against the trial count and request mix,
//! * the metrics digest is **replayed**: a live single-threaded server
//!   re-verifies the same request mix against a fresh registry and
//!   must reproduce the committed deterministic-render digest
//!   byte-for-byte, and
//! * `rps` and `mean_verify_ns` — the timing fields — merely parse and
//!   are positive; they are never byte-compared.
//!
//! Regenerate with `cargo run --release --bin pdip -- obs-audit
//! --smoke` after any change to the serve front-end, the metrics
//! registry, or the flight recorder.

use pdip_engine::{metrics_determinism_probe, E14_SEED};

fn committed_json() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/e14_obs.json"))
        .expect("results/e14_obs.json must be committed; regenerate with `pdip obs-audit --smoke`")
}

/// Extracts `"key": value` from one JSON line (the E14 schema is
/// line-oriented: one fault object per line, nested sections on single
/// lines). Values are cut at the first `,`/`}` outside brackets.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start =
        line.find(&pat).unwrap_or_else(|| panic!("missing field {key:?} in: {line}")) + pat.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            '}' | ',' if depth == 0 => return rest[..i].trim().trim_matches('"'),
            _ => {}
        }
    }
    rest.trim().trim_matches('"')
}

fn section<'a>(json: &'a str, key: &str) -> &'a str {
    json.lines()
        .find(|l| l.trim_start().starts_with(&format!("\"{key}\"")))
        .unwrap_or_else(|| panic!("missing section {key:?}"))
}

fn fault_lines(json: &str) -> Vec<&str> {
    json.lines().filter(|l| l.trim_start().starts_with("{\"class\"")).collect()
}

#[test]
fn committed_e14_schema_parses_and_passes() {
    let json = committed_json();
    assert!(json.contains("\"experiment\": \"e14-obs-audit\""));
    assert_eq!(field(section(&json, "seed"), "seed"), format!("{E14_SEED:#x}"));
    assert!(json.contains("\"passed\": true\n"), "committed audit must pass");
    let m = section(&json, "metrics");
    for flag in ["deterministic", "monotone", "conserved", "stats_frame_ok"] {
        assert_eq!(field(m, flag), "true", "metrics law {flag:?} failed in the committed run");
    }
}

#[test]
fn every_fault_class_is_exactly_attributed() {
    let json = committed_json();
    let trials: u64 = field(section(&json, "fault_trials"), "fault_trials").parse().unwrap();
    assert!(trials >= 2, "degenerate audit (fewer than 2 trials per class)");
    let lines = fault_lines(&json);
    let classes: Vec<&str> = lines.iter().map(|l| field(l, "class")).collect();
    assert_eq!(
        classes,
        vec![
            "truncated-frame",
            "oversized-frame",
            "idle-timeout",
            "read-stall",
            "peer-reset",
            "io-error",
        ],
        "fault-class table drifted from pdip_wire::frame::fault::ALL"
    );
    // Injection contract: per trial, one truncated frame AND one
    // mid-frame disconnect (both classify as truncated-frame), one
    // oversized declaration, one read stall. No other class may fire —
    // a nonzero io-error or peer-reset count means the registry
    // misattributed a fault.
    for line in lines {
        let class = field(line, "class");
        let expected: u64 = field(line, "expected").parse().unwrap();
        let observed: u64 = field(line, "observed").parse().unwrap();
        let want = match class {
            "truncated-frame" => 2 * trials,
            "oversized-frame" | "read-stall" => trials,
            _ => 0,
        };
        assert_eq!(expected, want, "injection contract drifted: {line}");
        assert_eq!(observed, expected, "fault counter misattributed a fault: {line}");
    }
}

#[test]
fn panics_busy_and_flight_conserve() {
    let json = committed_json();
    let trials: u64 = field(section(&json, "fault_trials"), "fault_trials").parse().unwrap();
    let p = section(&json, "panics");
    assert_eq!(field(p, "expected"), trials.to_string(), "panic trial count drifted");
    assert_eq!(field(p, "observed"), field(p, "expected"), "a worker panic went uncounted");
    let b = section(&json, "busy");
    let busy_expected: u64 = field(b, "expected").parse().unwrap();
    let busy_observed: u64 = field(b, "observed").parse().unwrap();
    let busy_verified: u64 = field(b, "verified").parse().unwrap();
    assert_eq!(busy_expected, 8 * trials, "busy-storm sizing drifted");
    assert_eq!(busy_observed, busy_expected, "a busy rejection went uncounted");
    assert_eq!(busy_verified, 4 * trials, "a gated storm request was never verified");
    let f = section(&json, "flight");
    assert!(field(f, "events").parse::<u64>().unwrap() > 0, "empty flight ring committed");
    assert_eq!(field(f, "replay_ok"), "true", "flight ring does not replay the fault sequence");
}

#[test]
fn verdict_counters_conserve_every_request() {
    let json = committed_json();
    let v = section(&json, "verdicts");
    let requests: u64 = field(v, "requests").parse().unwrap();
    let accepted: u64 = field(v, "accepted").parse().unwrap();
    let rejected: u64 = field(v, "rejected").parse().unwrap();
    let malformed: u64 = field(v, "malformed").parse().unwrap();
    assert!(requests >= 100, "degenerate probe mix (fewer than 100 requests)");
    assert_eq!(accepted + rejected + malformed, requests, "a request vanished from the counters");
    assert!(field(v, "proof_bits").parse::<u64>().unwrap() > 0, "no proof bits accounted");
}

/// Replays the metrics probe at one worker thread against a live
/// server with a fresh registry and compares the deterministic-render
/// digest with the committed one. Any drift in the serve pipeline, the
/// recorder wiring, the histogram layout, or the counter names shows
/// up here as a digest mismatch.
#[test]
fn metrics_digest_replays_against_a_live_server() {
    let json = committed_json();
    let v = section(&json, "verdicts");
    let requests: u64 = field(v, "requests").parse().unwrap();
    let probe =
        metrics_determinism_probe(E14_SEED, 1).expect("metrics replay against a live server");
    assert_eq!(probe.failures, Vec::<String>::new(), "replay violated a conservation law");
    assert_eq!(probe.requests as u64, requests, "request mix drifted");
    assert_eq!(
        format!("{:016x}", probe.digest),
        field(section(&json, "metrics"), "digest"),
        "replayed digest diverges from committed artifact — regenerate with `pdip obs-audit --smoke`"
    );
}

#[test]
fn timing_is_reported_and_positive() {
    // rps and mean_verify_ns are wall-clock data: assert they parse and
    // are positive, nothing more. Byte-comparing them would make the
    // artifact machine-dependent.
    let json = committed_json();
    let t = section(&json, "timing");
    assert!(field(t, "rps").parse::<f64>().unwrap() > 0.0, "zero measured throughput");
    assert!(field(t, "mean_verify_ns").parse::<u64>().unwrap() > 0, "zero verify latency");
}
